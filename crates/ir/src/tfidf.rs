use serde::{Deserialize, Serialize, Value};

use crate::codec;
use crate::{Corpus, CsrMatrix, IrError, SparseVec, TermCounts};

/// Term-frequency flavour used when weighting a document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TfMode {
    /// `tf_{i,j} = n_{i,j} / sum_k n_{k,j}` — the paper's normalised term
    /// frequency, which "prevents bias towards longer runs".
    #[default]
    Normalized,
    /// Raw occurrence counts, no length normalisation (ablation only).
    Raw,
    /// `log(1 + n_{i,j})` — classic sub-linear scaling (ablation only).
    Sublinear,
}

/// Inverse-document-frequency flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum IdfMode {
    /// `idf_i = ln(|D| / df_i)` — the paper's formula. Terms present in
    /// every document get weight zero; terms absent from the corpus are
    /// undefined and transform to zero.
    #[default]
    Standard,
    /// `idf_i = ln(1 + |D| / df_i)` — smoothed, never zero for seen terms.
    Smooth,
    /// `idf_i = 1` for every term — disables idf (tf-only ablation).
    Unit,
}

/// Options for fitting a [`TfIdfModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TfIdfOptions {
    /// Term-frequency scheme.
    pub tf: TfMode,
    /// Inverse-document-frequency scheme.
    pub idf: IdfMode,
}

/// Outcome of one [`TfIdfModel::refit_idf`] pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdfRefit {
    /// Terms whose idf value changed in this refit (ascending order).
    pub changed_terms: Vec<crate::TermId>,
    /// The largest per-term drift absorbed, as measured by
    /// [`TfIdfModel::idf_drift`] just before the refit.
    pub max_drift: f64,
}

/// A fitted tf-idf weighting model.
///
/// Fitting computes per-term document frequencies over a [`Corpus`];
/// transforming a document produces the weight vector
/// `w_{i,j} = tf_{i,j} x idf_i` of the paper (§2.1).
///
/// # Incremental maintenance
///
/// A model fitted once can track a *changing* corpus: [`observe`]
/// ([`unobserve`]) adds (drops) one document's contribution to the
/// document frequencies without touching the published idf weights, so
/// transforms stay cheap and deterministic while the df state drifts.
/// [`idf_drift`] measures how far the published weights have fallen
/// behind and [`refit_idf`] republishes them in one O(dim) pass — the
/// primitive the core crate's epoch-based incremental signature
/// database builds on.
///
/// [`observe`]: TfIdfModel::observe
/// [`unobserve`]: TfIdfModel::unobserve
/// [`idf_drift`]: TfIdfModel::idf_drift
/// [`refit_idf`]: TfIdfModel::refit_idf
///
/// # Examples
///
/// ```
/// use fmeter_ir::{Corpus, TermCounts, TfIdfModel};
///
/// let mut corpus = Corpus::new(3);
/// corpus.push(TermCounts::from_pairs(3, [(0, 4), (1, 4)]).unwrap());
/// corpus.push(TermCounts::from_pairs(3, [(0, 4), (2, 4)]).unwrap());
/// let model = TfIdfModel::fit(&corpus).unwrap();
///
/// let w = model.transform(corpus.doc(0).unwrap());
/// assert_eq!(w.get(0), 0.0);            // term 0 is in every doc
/// assert!(w.get(1) > 0.0);              // term 1 is discriminative
/// ```
#[derive(Debug, Clone)]
pub struct TfIdfModel {
    dim: usize,
    num_docs: usize,
    doc_freq: Vec<u32>,
    idf: Vec<f64>,
    options: TfIdfOptions,
    /// Per-term `ln(df)` cache backing [`idf_drift_cached`]
    /// (`NAN` = stale, recomputed lazily). Only `df` changes invalidate
    /// an entry, so a mutation dirties at most its document's support
    /// instead of the whole dimension. Not part of the serialized model.
    ///
    /// [`idf_drift_cached`]: TfIdfModel::idf_drift_cached
    ln_df: Vec<f64>,
    /// `true` exactly when no observe/unobserve happened since the last
    /// fit/refit — the drift is then zero by construction and both drift
    /// paths short-circuit. Not serialized (loads conservatively stale).
    drift_clean: bool,
}

/// The serialized field set (and order) of [`TfIdfModel`] — the
/// hand-written impls below must keep emitting exactly this layout so
/// the persisted-database envelope stays stable while in-memory caches
/// come and go.
const MODEL_FIELDS: [&str; 5] = ["dim", "num_docs", "doc_freq", "idf", "options"];

// Serialization is implemented by hand (not derived) so the `ln_df` /
// `drift_clean` caches stay out of the on-disk layout: the value tree
// is exactly what the pre-cache derive produced, and deserialization
// rebuilds the caches in their conservative (all-stale) state.
impl Serialize for TfIdfModel {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (MODEL_FIELDS[0].to_string(), self.dim.to_value()),
            (MODEL_FIELDS[1].to_string(), self.num_docs.to_value()),
            (MODEL_FIELDS[2].to_string(), self.doc_freq.to_value()),
            (MODEL_FIELDS[3].to_string(), self.idf.to_value()),
            (MODEL_FIELDS[4].to_string(), self.options.to_value()),
        ])
    }
}

impl Deserialize for TfIdfModel {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let dim = usize::from_value(v.get_field(MODEL_FIELDS[0])?)?;
        let num_docs = usize::from_value(v.get_field(MODEL_FIELDS[1])?)?;
        let doc_freq = Vec::from_value(v.get_field(MODEL_FIELDS[2])?)?;
        let idf = Vec::from_value(v.get_field(MODEL_FIELDS[3])?)?;
        let options = TfIdfOptions::from_value(v.get_field(MODEL_FIELDS[4])?)?;
        Ok(TfIdfModel {
            dim,
            num_docs,
            doc_freq,
            idf,
            options,
            ln_df: vec![f64::NAN; dim],
            drift_clean: false,
        })
    }
}

/// The idf formula for one term: `df` documents contain it out of `n`.
///
/// A term absent from the corpus (`df == 0`) short-circuits to zero
/// *before* the mode formula runs — `IdfMode::Standard` would otherwise
/// compute `ln(n / 0) = inf` and poison every downstream distance.
fn idf_value(mode: IdfMode, df: u32, n: usize) -> f64 {
    if df == 0 {
        return 0.0;
    }
    let n = n as f64;
    match mode {
        IdfMode::Standard => (n / df as f64).ln(),
        IdfMode::Smooth => (1.0 + n / df as f64).ln(),
        IdfMode::Unit => 1.0,
    }
}

impl TfIdfModel {
    /// Fits the model with default (paper) options.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::EmptyCorpus`] when the corpus has no documents.
    pub fn fit(corpus: &Corpus) -> Result<Self, IrError> {
        Self::fit_with(corpus, TfIdfOptions::default())
    }

    /// Fits the model with explicit tf/idf schemes.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::EmptyCorpus`] when the corpus has no documents.
    pub fn fit_with(corpus: &Corpus, options: TfIdfOptions) -> Result<Self, IrError> {
        if corpus.is_empty() {
            return Err(IrError::EmptyCorpus);
        }
        let doc_freq = corpus.document_frequencies();
        let n = corpus.len();
        let idf = doc_freq
            .iter()
            .map(|&df| idf_value(options.idf, df, n))
            .collect();
        Ok(TfIdfModel {
            dim: corpus.dim(),
            num_docs: n,
            doc_freq,
            idf,
            options,
            ln_df: vec![f64::NAN; corpus.dim()],
            drift_clean: true,
        })
    }

    /// Adds one document's contribution to the document frequencies
    /// (`|D| += 1`, `df_t += 1` for every distinct term of `doc`).
    ///
    /// The published idf weights are deliberately *not* updated — they
    /// keep describing the last [`refit_idf`](Self::refit_idf)
    /// generation, so transforms of concurrent documents stay mutually
    /// comparable. Call [`idf_drift`](Self::idf_drift) to see how stale
    /// they have become.
    ///
    /// # Panics
    ///
    /// Panics if the document's dimension differs from the model's.
    pub fn observe(&mut self, doc: &TermCounts) {
        assert_eq!(
            doc.dim(),
            self.dim,
            "document dimension {} does not match model dimension {}",
            doc.dim(),
            self.dim
        );
        self.num_docs += 1;
        for (t, _) in doc.iter() {
            self.doc_freq[t as usize] += 1;
            self.ln_df[t as usize] = f64::NAN;
        }
        self.drift_clean = false;
    }

    /// Drops one document's contribution to the document frequencies —
    /// the exact inverse of [`observe`](Self::observe). Like `observe`,
    /// it leaves the published idf weights untouched.
    ///
    /// # Panics
    ///
    /// Panics if the document's dimension differs from the model's, or
    /// if the document was never observed (a `df` would underflow —
    /// mismatched observe/unobserve pairs are a programming error).
    pub fn unobserve(&mut self, doc: &TermCounts) {
        assert_eq!(
            doc.dim(),
            self.dim,
            "document dimension {} does not match model dimension {}",
            doc.dim(),
            self.dim
        );
        assert!(self.num_docs > 0, "unobserve on an empty model");
        self.num_docs -= 1;
        for (t, _) in doc.iter() {
            let df = &mut self.doc_freq[t as usize];
            assert!(*df > 0, "unobserve of a document never observed (term {t})");
            *df -= 1;
            self.ln_df[t as usize] = f64::NAN;
        }
        self.drift_clean = false;
    }

    /// How far the published idf weights lag behind the current document
    /// frequencies: the maximum over all terms of
    /// `|idf_fresh - idf_published| / max(1, |idf_published|)`.
    ///
    /// The denominator floors at 1 so the measure reads as an *absolute*
    /// delta for near-zero idfs (ubiquitous terms, whose idf hovers at
    /// `ln(1) = 0`) and a *relative* one for large idfs — without the
    /// floor, any ubiquitous term would report unbounded drift from the
    /// first mutation. Zero when no mutation happened since the last
    /// refit.
    pub fn idf_drift(&self) -> f64 {
        if self.drift_clean {
            // No df mutation since the last (re)fit: every fresh value
            // recomputes bit-identically to the published one.
            return 0.0;
        }
        let mut drift = 0.0f64;
        for (t, &df) in self.doc_freq.iter().enumerate() {
            let fresh = idf_value(self.options.idf, df, self.num_docs);
            let published = self.idf[t];
            let d = (fresh - published).abs() / published.abs().max(1.0);
            drift = drift.max(d);
        }
        drift
    }

    /// The cheap estimator of [`idf_drift`](Self::idf_drift) used by
    /// policy checks on the mutation hot path.
    ///
    /// [`idf_drift`](Self::idf_drift) pays one `ln` per term on *every*
    /// call even though a single mutation only changes the document
    /// frequencies of its own support. This variant exploits
    /// `ln(n / df) = ln(n) − ln(df)`: the per-term `ln(df)` values are
    /// cached and invalidated only when that term's `df` changes, so a
    /// call costs one `ln(n)`, one `ln` per *dirtied* term, and an
    /// O(dim) pass of subtract/compare — no transcendental per clean
    /// term. The result matches `idf_drift` to within a couple of ulps
    /// (the decomposed logarithm rounds differently in the last bits),
    /// which is far below any meaningful refit threshold; when exact
    /// zero matters (reporting, tests), use `idf_drift`.
    ///
    /// Only [`IdfMode::Standard`] decomposes; [`IdfMode::Unit`] needs no
    /// logarithm at all and [`IdfMode::Smooth`] (an ablation mode) falls
    /// back to the exact computation.
    pub fn idf_drift_cached(&mut self) -> f64 {
        if self.drift_clean {
            return 0.0;
        }
        match self.options.idf {
            IdfMode::Smooth => self.idf_drift(),
            IdfMode::Unit => {
                let mut drift = 0.0f64;
                for (t, &df) in self.doc_freq.iter().enumerate() {
                    let fresh = if df == 0 { 0.0 } else { 1.0 };
                    let published = self.idf[t];
                    let d = (fresh - published).abs() / published.abs().max(1.0);
                    drift = drift.max(d);
                }
                drift
            }
            IdfMode::Standard => {
                let ln_n = if self.num_docs == 0 {
                    0.0 // every df is 0 too; the fresh value never reads this
                } else {
                    (self.num_docs as f64).ln()
                };
                let mut drift = 0.0f64;
                for (t, &df) in self.doc_freq.iter().enumerate() {
                    let fresh = if df == 0 {
                        0.0
                    } else {
                        let cached = &mut self.ln_df[t];
                        if cached.is_nan() {
                            *cached = (df as f64).ln();
                        }
                        ln_n - *cached
                    };
                    let published = self.idf[t];
                    let d = (fresh - published).abs() / published.abs().max(1.0);
                    drift = drift.max(d);
                }
                drift
            }
        }
    }

    /// Recomputes the published idf weights from the current document
    /// frequencies in one O(dim) pass, returning which terms changed and
    /// the drift absorbed. Transforms performed after this call use the
    /// fresh generation.
    pub fn refit_idf(&mut self) -> IdfRefit {
        let max_drift = self.idf_drift();
        let mut changed_terms = Vec::new();
        for (t, &df) in self.doc_freq.iter().enumerate() {
            let fresh = idf_value(self.options.idf, df, self.num_docs);
            if fresh != self.idf[t] {
                self.idf[t] = fresh;
                changed_terms.push(t as crate::TermId);
            }
        }
        self.drift_clean = true;
        IdfRefit {
            changed_terms,
            max_drift,
        }
    }

    /// Transforms one document into its tf-idf weight vector.
    ///
    /// Terms unseen during fitting receive weight zero (their idf is
    /// undefined — the corpus gives no evidence about them). The empty
    /// document transforms to the zero vector.
    ///
    /// # Panics
    ///
    /// Panics if the document's dimension differs from the model's; the
    /// term space is fixed at fit time.
    pub fn transform(&self, doc: &TermCounts) -> SparseVec {
        assert_eq!(
            doc.dim(),
            self.dim,
            "document dimension {} does not match model dimension {}",
            doc.dim(),
            self.dim
        );
        let total = doc.total();
        if total == 0 {
            return SparseVec::zeros(self.dim);
        }
        let pairs = doc
            .iter()
            .map(|(t, n)| (t, self.weight(n, total) * self.idf[t as usize]));
        SparseVec::from_pairs(self.dim, pairs).expect("document terms are in range")
    }

    /// The configured tf scheme applied to one raw count.
    fn weight(&self, n: u64, total: u64) -> f64 {
        match self.options.tf {
            TfMode::Normalized => n as f64 / total as f64,
            TfMode::Raw => n as f64,
            TfMode::Sublinear => (1.0 + n as f64).ln(),
        }
    }

    /// Transforms every document of a corpus (usually the fitting corpus).
    ///
    /// # Panics
    ///
    /// Panics if the corpus dimension differs from the model's.
    pub fn transform_corpus(&self, corpus: &Corpus) -> Vec<SparseVec> {
        corpus.iter().map(|d| self.transform(d)).collect()
    }

    /// Transforms every document of a corpus directly into a packed
    /// [`CsrMatrix`] — no intermediate per-document [`SparseVec`]
    /// allocations. Row `i` of the result equals
    /// `transform(corpus.doc(i))`; per-row L2 norms come cached, ready for
    /// the batch distance kernels.
    ///
    /// # Panics
    ///
    /// Panics if the corpus dimension differs from the model's.
    pub fn transform_corpus_csr(&self, corpus: &Corpus) -> CsrMatrix {
        assert_eq!(
            corpus.dim(),
            self.dim,
            "corpus dimension {} does not match model dimension {}",
            corpus.dim(),
            self.dim
        );
        let nnz_bound: usize = corpus.iter().map(TermCounts::distinct_terms).sum();
        let mut indptr = Vec::with_capacity(corpus.len() + 1);
        let mut indices = Vec::with_capacity(nnz_bound);
        let mut values = Vec::with_capacity(nnz_bound);
        indptr.push(0);
        for doc in corpus.iter() {
            let total = doc.total();
            if total > 0 {
                // TermCounts iterates in ascending term order with no
                // duplicates, so the CSR row comes out sorted for free —
                // the layout invariants hold by construction.
                for (t, n) in doc.iter() {
                    let w = self.weight(n, total) * self.idf[t as usize];
                    if w != 0.0 {
                        indices.push(t);
                        values.push(w);
                    }
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_parts_trusted(self.dim, indptr, indices, values)
    }

    /// Fits on `corpus` and immediately transforms all its documents.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::EmptyCorpus`] when the corpus has no documents.
    pub fn fit_transform(corpus: &Corpus) -> Result<(Self, Vec<SparseVec>), IrError> {
        let model = Self::fit(corpus)?;
        let vectors = model.transform_corpus(corpus);
        Ok((model, vectors))
    }

    /// Dimensionality of the term space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of documents the model was fitted on (`|D|`).
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Document frequency of `term` (how many fitting documents contained it).
    pub fn document_frequency(&self, term: u32) -> u32 {
        self.doc_freq.get(term as usize).copied().unwrap_or(0)
    }

    /// Inverse document frequency of `term` (zero for unseen terms).
    pub fn idf(&self, term: u32) -> f64 {
        self.idf.get(term as usize).copied().unwrap_or(0.0)
    }

    /// The options the model was fitted with.
    pub fn options(&self) -> TfIdfOptions {
        self.options
    }
}

// Binary wire layout (see `crate::codec`). The mode enums travel as one-byte
// tags; the tag values are part of the v5 wire format and must never be
// renumbered, only appended to.
impl codec::BinCodec for TfMode {
    fn encode_bin(&self, out: &mut Vec<u8>) {
        codec::put_u8(
            out,
            match self {
                TfMode::Normalized => 0,
                TfMode::Raw => 1,
                TfMode::Sublinear => 2,
            },
        );
    }

    fn decode_bin(r: &mut codec::Reader<'_>) -> Result<Self, codec::CodecError> {
        match r.get_u8()? {
            0 => Ok(TfMode::Normalized),
            1 => Ok(TfMode::Raw),
            2 => Ok(TfMode::Sublinear),
            b => Err(codec::CodecError::new(format!("unknown TfMode tag {b}"))),
        }
    }
}

impl codec::BinCodec for IdfMode {
    fn encode_bin(&self, out: &mut Vec<u8>) {
        codec::put_u8(
            out,
            match self {
                IdfMode::Standard => 0,
                IdfMode::Smooth => 1,
                IdfMode::Unit => 2,
            },
        );
    }

    fn decode_bin(r: &mut codec::Reader<'_>) -> Result<Self, codec::CodecError> {
        match r.get_u8()? {
            0 => Ok(IdfMode::Standard),
            1 => Ok(IdfMode::Smooth),
            2 => Ok(IdfMode::Unit),
            b => Err(codec::CodecError::new(format!("unknown IdfMode tag {b}"))),
        }
    }
}

impl codec::BinCodec for TfIdfOptions {
    fn encode_bin(&self, out: &mut Vec<u8>) {
        self.tf.encode_bin(out);
        self.idf.encode_bin(out);
    }

    fn decode_bin(r: &mut codec::Reader<'_>) -> Result<Self, codec::CodecError> {
        Ok(TfIdfOptions {
            tf: TfMode::decode_bin(r)?,
            idf: IdfMode::decode_bin(r)?,
        })
    }
}

// Same field set as the JSON surface (`MODEL_FIELDS`): the in-memory caches
// stay off the wire and are rebuilt conservatively stale on decode, exactly
// like `Deserialize::from_value`.
impl codec::BinCodec for TfIdfModel {
    fn encode_bin(&self, out: &mut Vec<u8>) {
        codec::put_usize(out, self.dim);
        codec::put_usize(out, self.num_docs);
        codec::put_u32s(out, &self.doc_freq);
        codec::put_f64s(out, &self.idf);
        self.options.encode_bin(out);
    }

    fn decode_bin(r: &mut codec::Reader<'_>) -> Result<Self, codec::CodecError> {
        let dim = r.get_usize()?;
        let num_docs = r.get_usize()?;
        let doc_freq = r.get_u32s()?;
        let idf = r.get_f64s()?;
        let options = TfIdfOptions::decode_bin(r)?;
        if doc_freq.len() != dim || idf.len() != dim {
            return Err(codec::CodecError::new(format!(
                "TfIdfModel arrays disagree with dim {dim}: {} doc_freq, {} idf",
                doc_freq.len(),
                idf.len()
            )));
        }
        Ok(TfIdfModel {
            dim,
            num_docs,
            doc_freq,
            idf,
            options,
            ln_df: vec![f64::NAN; dim],
            drift_clean: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_corpus() -> Corpus {
        let mut c = Corpus::new(4);
        // term 0: in all 4 docs (a "stop word" like a hot utility function)
        // term 1: in 2 docs, term 2: in 1 doc, term 3: never
        c.push(TermCounts::from_pairs(4, [(0, 8), (1, 2)]).unwrap());
        c.push(TermCounts::from_pairs(4, [(0, 5), (1, 5)]).unwrap());
        c.push(TermCounts::from_pairs(4, [(0, 1), (2, 9)]).unwrap());
        c.push(TermCounts::from_pairs(4, [(0, 7)]).unwrap());
        c
    }

    #[test]
    fn fit_rejects_empty_corpus() {
        let c = Corpus::new(4);
        assert_eq!(TfIdfModel::fit(&c).unwrap_err(), IrError::EmptyCorpus);
    }

    #[test]
    fn idf_matches_formula() {
        let m = TfIdfModel::fit(&sample_corpus()).unwrap();
        assert_eq!(m.num_docs(), 4);
        assert!((m.idf(0) - (4.0f64 / 4.0).ln()).abs() < 1e-12); // = 0
        assert!((m.idf(1) - (4.0f64 / 2.0).ln()).abs() < 1e-12);
        assert!((m.idf(2) - (4.0f64 / 1.0).ln()).abs() < 1e-12);
        assert_eq!(m.idf(3), 0.0); // unseen
        assert_eq!(m.document_frequency(1), 2);
    }

    #[test]
    fn ubiquitous_term_gets_zero_weight() {
        let c = sample_corpus();
        let m = TfIdfModel::fit(&c).unwrap();
        let w = m.transform(c.doc(0).unwrap());
        assert_eq!(w.get(0), 0.0);
        assert!(w.get(1) > 0.0);
    }

    #[test]
    fn tf_is_length_normalized() {
        let c = sample_corpus();
        let m = TfIdfModel::fit(&c).unwrap();
        // Doc 0: term 1 count 2 of total 10 -> tf = 0.2.
        let w = m.transform(c.doc(0).unwrap());
        let expected = 0.2 * (4.0f64 / 2.0).ln();
        assert!((w.get(1) - expected).abs() < 1e-12);
    }

    #[test]
    fn scaling_counts_leaves_normalized_tf_invariant() {
        // The paper's claim: the collection period (run length) does not
        // skew the signature because tf is normalised.
        let c = sample_corpus();
        let m = TfIdfModel::fit(&c).unwrap();
        let short = TermCounts::from_pairs(4, [(0, 8), (1, 2)]).unwrap();
        let long = TermCounts::from_pairs(4, [(0, 800), (1, 200)]).unwrap();
        let ws = m.transform(&short);
        let wl = m.transform(&long);
        for t in 0..4 {
            assert!((ws.get(t) - wl.get(t)).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_document_transforms_to_zero() {
        let c = sample_corpus();
        let m = TfIdfModel::fit(&c).unwrap();
        let w = m.transform(&TermCounts::new(4));
        assert!(w.is_zero());
    }

    #[test]
    fn unseen_term_transforms_to_zero_weight() {
        let c = sample_corpus();
        let m = TfIdfModel::fit(&c).unwrap();
        let doc = TermCounts::from_pairs(4, [(3, 100)]).unwrap();
        assert!(m.transform(&doc).is_zero());
    }

    #[test]
    fn raw_tf_mode_keeps_counts() {
        let c = sample_corpus();
        let m = TfIdfModel::fit_with(
            &c,
            TfIdfOptions {
                tf: TfMode::Raw,
                idf: IdfMode::Unit,
            },
        )
        .unwrap();
        let w = m.transform(c.doc(0).unwrap());
        assert_eq!(w.get(0), 8.0);
        assert_eq!(w.get(1), 2.0);
    }

    #[test]
    fn sublinear_tf_mode() {
        let c = sample_corpus();
        let m = TfIdfModel::fit_with(
            &c,
            TfIdfOptions {
                tf: TfMode::Sublinear,
                idf: IdfMode::Unit,
            },
        )
        .unwrap();
        let w = m.transform(c.doc(0).unwrap());
        assert!((w.get(0) - 9.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn smooth_idf_is_nonzero_for_ubiquitous_terms() {
        let c = sample_corpus();
        let m = TfIdfModel::fit_with(
            &c,
            TfIdfOptions {
                tf: TfMode::Normalized,
                idf: IdfMode::Smooth,
            },
        )
        .unwrap();
        assert!(m.idf(0) > 0.0);
    }

    #[test]
    fn fit_transform_returns_all_documents() {
        let c = sample_corpus();
        let (m, vs) = TfIdfModel::fit_transform(&c).unwrap();
        assert_eq!(vs.len(), 4);
        assert_eq!(m.dim(), 4);
        for v in &vs {
            assert_eq!(v.dim(), 4);
        }
    }

    #[test]
    fn transform_corpus_csr_matches_per_doc_transform() {
        let c = sample_corpus();
        for (tf, idf) in [
            (TfMode::Normalized, IdfMode::Standard),
            (TfMode::Raw, IdfMode::Smooth),
            (TfMode::Sublinear, IdfMode::Unit),
        ] {
            let m = TfIdfModel::fit_with(&c, TfIdfOptions { tf, idf }).unwrap();
            let vectors = m.transform_corpus(&c);
            let csr = m.transform_corpus_csr(&c);
            assert_eq!(csr.len(), vectors.len());
            assert_eq!(csr.dim(), m.dim());
            for (i, v) in vectors.iter().enumerate() {
                assert_eq!(&csr.row_to_sparse(i), v, "row {i} under {tf:?}/{idf:?}");
                assert!((csr.norm(i) - v.norm_l2()).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn transform_corpus_csr_handles_empty_documents() {
        let mut c = Corpus::new(4);
        c.push(TermCounts::from_pairs(4, [(1, 3)]).unwrap());
        c.push(TermCounts::new(4)); // empty doc -> empty CSR row
        c.push(TermCounts::from_pairs(4, [(2, 1)]).unwrap());
        let m = TfIdfModel::fit(&c).unwrap();
        let csr = m.transform_corpus_csr(&c);
        assert_eq!(csr.len(), 3);
        assert_eq!(csr.row(1).0.len(), 0);
        assert_eq!(csr.norm(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "does not match model dimension")]
    fn transform_corpus_csr_rejects_wrong_dim() {
        let m = TfIdfModel::fit(&sample_corpus()).unwrap();
        m.transform_corpus_csr(&Corpus::new(5));
    }

    #[test]
    #[should_panic(expected = "does not match model dimension")]
    fn transform_rejects_wrong_dim() {
        let m = TfIdfModel::fit(&sample_corpus()).unwrap();
        m.transform(&TermCounts::new(5));
    }

    #[test]
    fn corpus_absent_terms_transform_finite_zero_in_every_idf_mode() {
        // Regression guard: a term with df = 0 must short-circuit to idf 0
        // *before* the mode formula runs — IdfMode::Standard would otherwise
        // compute ln(n/0) = inf, and a document containing that term would
        // transform to an inf/NaN weight and poison every downstream
        // distance. Term 3 never occurs in sample_corpus().
        for idf in [IdfMode::Standard, IdfMode::Smooth, IdfMode::Unit] {
            let m = TfIdfModel::fit_with(
                &sample_corpus(),
                TfIdfOptions {
                    tf: TfMode::Normalized,
                    idf,
                },
            )
            .unwrap();
            assert_eq!(m.idf(3), 0.0, "{idf:?}: unseen idf must be exactly 0");
            let doc = TermCounts::from_pairs(4, [(1, 1), (3, 100)]).unwrap();
            let w = m.transform(&doc);
            assert_eq!(w.get(3), 0.0, "{idf:?}: unseen term weight must be 0");
            for (t, x) in w.iter() {
                assert!(x.is_finite(), "{idf:?}: weight of term {t} is {x}");
            }
        }
        // Out-of-vocabulary idf lookups report 0 instead of panicking.
        let m = TfIdfModel::fit(&sample_corpus()).unwrap();
        assert_eq!(m.idf(999), 0.0);
    }

    #[test]
    fn observe_updates_df_but_not_idf() {
        let mut m = TfIdfModel::fit(&sample_corpus()).unwrap();
        let idf_before: Vec<f64> = (0..4).map(|t| m.idf(t)).collect();
        m.observe(&TermCounts::from_pairs(4, [(1, 3), (3, 1)]).unwrap());
        assert_eq!(m.num_docs(), 5);
        assert_eq!(m.document_frequency(1), 3);
        assert_eq!(m.document_frequency(3), 1);
        // Published weights are the old generation until a refit.
        for t in 0..4 {
            assert_eq!(m.idf(t), idf_before[t as usize]);
        }
        assert!(m.idf_drift() > 0.0);
    }

    #[test]
    fn refit_after_observe_matches_fresh_fit() {
        for (tf, idf) in [
            (TfMode::Normalized, IdfMode::Standard),
            (TfMode::Normalized, IdfMode::Smooth),
            (TfMode::Raw, IdfMode::Unit),
        ] {
            let options = TfIdfOptions { tf, idf };
            let mut grown = sample_corpus();
            let mut m = TfIdfModel::fit_with(&grown, options).unwrap();
            let extra = TermCounts::from_pairs(4, [(1, 3), (3, 7)]).unwrap();
            m.observe(&extra);
            let refit = m.refit_idf();
            grown.push(extra);
            let fresh = TfIdfModel::fit_with(&grown, options).unwrap();
            assert_eq!(m.num_docs(), fresh.num_docs());
            for t in 0..4u32 {
                assert_eq!(m.document_frequency(t), fresh.document_frequency(t));
                assert_eq!(m.idf(t), fresh.idf(t), "{tf:?}/{idf:?} term {t}");
            }
            // Term 3 went from unseen (idf 0) to seen; in Standard/Smooth
            // modes term 1's idf moved too.
            assert!(refit.changed_terms.contains(&3) || idf == IdfMode::Unit);
            assert_eq!(m.idf_drift(), 0.0, "refit must zero the drift");
        }
    }

    #[test]
    fn unobserve_is_inverse_of_observe() {
        let mut m = TfIdfModel::fit(&sample_corpus()).unwrap();
        let reference = TfIdfModel::fit(&sample_corpus()).unwrap();
        let doc = TermCounts::from_pairs(4, [(0, 2), (2, 5)]).unwrap();
        m.observe(&doc);
        m.unobserve(&doc);
        assert_eq!(m.num_docs(), reference.num_docs());
        for t in 0..4u32 {
            assert_eq!(m.document_frequency(t), reference.document_frequency(t));
        }
        assert_eq!(m.idf_drift(), 0.0);
        assert!(m.refit_idf().changed_terms.is_empty());
    }

    #[test]
    #[should_panic(expected = "never observed")]
    fn unobserve_unknown_document_panics() {
        let mut m = TfIdfModel::fit(&sample_corpus()).unwrap();
        // Term 3 has df = 0: unobserving a doc containing it underflows.
        m.unobserve(&TermCounts::from_pairs(4, [(3, 1)]).unwrap());
    }

    #[test]
    fn cached_drift_tracks_exact_drift_through_mutations() {
        for idf in [IdfMode::Standard, IdfMode::Smooth, IdfMode::Unit] {
            let mut m = TfIdfModel::fit_with(
                &sample_corpus(),
                TfIdfOptions {
                    tf: TfMode::Normalized,
                    idf,
                },
            )
            .unwrap();
            assert_eq!(m.idf_drift_cached(), 0.0, "{idf:?}: clean model drifts");
            // A deterministic observe/unobserve churn touching every term.
            let docs = [
                TermCounts::from_pairs(4, [(0, 1), (3, 2)]).unwrap(),
                TermCounts::from_pairs(4, [(1, 5)]).unwrap(),
                TermCounts::from_pairs(4, [(2, 3), (3, 1)]).unwrap(),
            ];
            for d in &docs {
                m.observe(d);
                let exact = m.idf_drift();
                let cached = m.idf_drift_cached();
                assert!(
                    (cached - exact).abs() <= 1e-12 * exact.abs().max(1.0),
                    "{idf:?}: cached {cached} vs exact {exact}"
                );
            }
            m.unobserve(&docs[1]);
            let exact = m.idf_drift();
            let cached = m.idf_drift_cached();
            assert!((cached - exact).abs() <= 1e-12 * exact.abs().max(1.0));
            // A refit re-arms the exact-zero short-circuit.
            m.refit_idf();
            assert_eq!(m.idf_drift_cached(), 0.0, "{idf:?}: post-refit drift");
            assert_eq!(m.idf_drift(), 0.0);
        }
    }

    #[test]
    fn model_serde_layout_excludes_caches_and_round_trips() {
        let mut m = TfIdfModel::fit(&sample_corpus()).unwrap();
        m.observe(&TermCounts::from_pairs(4, [(1, 2), (3, 4)]).unwrap());
        let value = serde::Serialize::to_value(&m);
        // The on-disk layout is exactly the five model fields — the
        // drift caches must never leak into persisted databases.
        let serde::Value::Object(pairs) = &value else {
            panic!("model must serialize as an object");
        };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, MODEL_FIELDS);
        let restored: TfIdfModel = serde::Deserialize::from_value(&value).unwrap();
        assert_eq!(restored.num_docs(), m.num_docs());
        assert_eq!(restored.options(), m.options());
        for t in 0..4u32 {
            assert_eq!(restored.document_frequency(t), m.document_frequency(t));
            assert_eq!(restored.idf(t), m.idf(t));
        }
        // The restored model rebuilds its cache lazily and agrees with
        // the original estimator.
        let mut restored = restored;
        assert!((restored.idf_drift_cached() - m.idf_drift_cached()).abs() <= 1e-12);
    }

    #[test]
    fn drift_floors_denominator_for_near_zero_idf() {
        // Term 0 is ubiquitous (idf = ln(1) = 0). Growing the corpus with
        // docs that omit it gives it a small positive idf; drift must
        // report that as an absolute delta, not divide by ~0.
        let mut m = TfIdfModel::fit(&sample_corpus()).unwrap();
        m.observe(&TermCounts::from_pairs(4, [(1, 1)]).unwrap());
        let drift = m.idf_drift();
        let expected = (5.0f64 / 4.0).ln(); // term 0: idf 0 -> ln(5/4)
        assert!(drift >= expected - 1e-12, "drift {drift} < {expected}");
        assert!(drift.is_finite());
    }
}
