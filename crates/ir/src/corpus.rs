use serde::{Deserialize, Serialize};

use crate::codec;
use crate::{IrError, SparseVec, TermId};

/// Raw term counts for one document.
///
/// In Fmeter terms, this is what the logging daemon produces per interval:
/// the number of times each kernel function was invoked during the
/// monitoring run (the `n_{i,j}` of the paper). Counts are stored sparsely
/// and sorted by term id.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TermCounts {
    dim: usize,
    terms: Vec<TermId>,
    counts: Vec<u64>,
}

impl TermCounts {
    /// Creates an empty document over a space of `dim` terms.
    pub fn new(dim: usize) -> Self {
        TermCounts {
            dim,
            terms: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Builds a document from `(term, count)` pairs.
    ///
    /// Duplicated term ids are summed; zero counts are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::TermOutOfRange`] if any term id is `>= dim`.
    pub fn from_pairs(
        dim: usize,
        pairs: impl IntoIterator<Item = (TermId, u64)>,
    ) -> Result<Self, IrError> {
        let mut entries: Vec<(TermId, u64)> = pairs.into_iter().collect();
        for &(t, _) in &entries {
            if t as usize >= dim {
                return Err(IrError::TermOutOfRange { term: t, dim });
            }
        }
        entries.sort_unstable_by_key(|&(t, _)| t);
        let mut doc = TermCounts::new(dim);
        for (t, c) in entries {
            if c == 0 {
                continue;
            }
            if doc.terms.last() == Some(&t) {
                *doc.counts.last_mut().expect("counts tracks terms") += c;
            } else {
                doc.terms.push(t);
                doc.counts.push(c);
            }
        }
        Ok(doc)
    }

    /// Builds a document from a dense count slice.
    pub fn from_dense(dense: &[u64]) -> Self {
        let mut doc = TermCounts::new(dense.len());
        for (i, &c) in dense.iter().enumerate() {
            if c != 0 {
                doc.terms.push(i as TermId);
                doc.counts.push(c);
            }
        }
        doc
    }

    /// Adds `count` occurrences of `term`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::TermOutOfRange`] if `term >= dim`.
    pub fn record(&mut self, term: TermId, count: u64) -> Result<(), IrError> {
        if term as usize >= self.dim {
            return Err(IrError::TermOutOfRange {
                term,
                dim: self.dim,
            });
        }
        if count == 0 {
            return Ok(());
        }
        match self.terms.binary_search(&term) {
            Ok(pos) => self.counts[pos] += count,
            Err(pos) => {
                self.terms.insert(pos, term);
                self.counts.insert(pos, count);
            }
        }
        Ok(())
    }

    /// Dimensionality of the term space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of distinct terms present in the document.
    pub fn distinct_terms(&self) -> usize {
        self.terms.len()
    }

    /// Total number of term occurrences (the document "length",
    /// `sum_k n_{k,j}`).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Count for a specific term (zero when absent).
    pub fn count(&self, term: TermId) -> u64 {
        match self.terms.binary_search(&term) {
            Ok(pos) => self.counts[pos],
            Err(_) => 0,
        }
    }

    /// Returns `true` when no term has been recorded.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(term, count)` pairs in increasing term order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, u64)> + '_ {
        self.terms.iter().copied().zip(self.counts.iter().copied())
    }

    /// Converts the raw counts to a sparse `f64` vector (no weighting).
    pub fn to_sparse(&self) -> SparseVec {
        SparseVec::from_pairs(self.dim, self.iter().map(|(t, c)| (t, c as f64)))
            .expect("terms validated on insertion")
    }
}

/// A collection of documents sharing one term space — the paper's "corpus"
/// of monitored low-level system activities.
///
/// All documents must have the same dimensionality, enforced at insertion.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Corpus {
    dim: usize,
    docs: Vec<TermCounts>,
}

impl Corpus {
    /// Creates an empty corpus over a space of `dim` terms.
    pub fn new(dim: usize) -> Self {
        Corpus {
            dim,
            docs: Vec::new(),
        }
    }

    /// Appends a document, returning its [`DocId`](crate::DocId).
    ///
    /// # Panics
    ///
    /// Panics if the document's dimension differs from the corpus dimension;
    /// mixing spaces is a programming error, not a runtime condition.
    pub fn push(&mut self, doc: TermCounts) -> usize {
        assert_eq!(
            doc.dim(),
            self.dim,
            "document dimension {} does not match corpus dimension {}",
            doc.dim(),
            self.dim
        );
        self.docs.push(doc);
        self.docs.len() - 1
    }

    /// Number of documents (`|D|`).
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Returns `true` when the corpus holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Dimensionality of the term space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrows document `id`, if present.
    pub fn doc(&self, id: usize) -> Option<&TermCounts> {
        self.docs.get(id)
    }

    /// Iterates over the documents in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &TermCounts> {
        self.docs.iter()
    }

    /// Document frequency per term: `df_i = |{d : t_i in d}|`.
    pub fn document_frequencies(&self) -> Vec<u32> {
        let mut df = vec![0u32; self.dim];
        for doc in &self.docs {
            for (t, _) in doc.iter() {
                df[t as usize] += 1;
            }
        }
        df
    }
}

impl IntoIterator for Corpus {
    type Item = TermCounts;
    type IntoIter = std::vec::IntoIter<TermCounts>;

    /// Consumes the corpus, yielding its documents in insertion order —
    /// the move-based path compaction passes use to repack a corpus
    /// without cloning every document's count buffers.
    fn into_iter(self) -> Self::IntoIter {
        self.docs.into_iter()
    }
}

impl FromIterator<TermCounts> for Corpus {
    /// Collects documents into a corpus; the dimension is taken from the
    /// first document (empty input produces a zero-dimension corpus).
    ///
    /// # Panics
    ///
    /// Panics if the documents disagree on dimensionality.
    fn from_iter<I: IntoIterator<Item = TermCounts>>(iter: I) -> Self {
        let docs: Vec<TermCounts> = iter.into_iter().collect();
        let dim = docs.first().map_or(0, |d| d.dim());
        let mut corpus = Corpus::new(dim);
        for d in docs {
            corpus.push(d);
        }
        corpus
    }
}

impl Extend<TermCounts> for Corpus {
    fn extend<I: IntoIterator<Item = TermCounts>>(&mut self, iter: I) {
        for d in iter {
            self.push(d);
        }
    }
}

// Binary wire layout (see `crate::codec`): `dim` then the `terms`/`counts`
// parallel arrays. Decoding re-validates the constructor invariants (terms
// strictly ascending and in range, counts non-zero, arrays parallel) directly
// instead of routing through `from_pairs`, which would re-sort already-sorted
// input on the checkpoint-restart hot path.
impl codec::BinCodec for TermCounts {
    fn encode_bin(&self, out: &mut Vec<u8>) {
        codec::put_usize(out, self.dim);
        codec::put_u32s(out, &self.terms);
        codec::put_u64s(out, &self.counts);
    }

    fn decode_bin(r: &mut codec::Reader<'_>) -> Result<Self, codec::CodecError> {
        let dim = r.get_usize()?;
        let terms = r.get_u32s()?;
        let counts = r.get_u64s()?;
        if terms.len() != counts.len() {
            return Err(codec::CodecError::new(format!(
                "TermCounts arrays disagree: {} terms vs {} counts",
                terms.len(),
                counts.len()
            )));
        }
        for pair in terms.windows(2) {
            if pair[0] >= pair[1] {
                return Err(codec::CodecError::new(
                    "TermCounts terms not strictly ascending",
                ));
            }
        }
        if let Some(&t) = terms.last() {
            if t as usize >= dim {
                return Err(codec::CodecError::new(format!(
                    "TermCounts term {t} out of range for dim {dim}"
                )));
            }
        }
        if counts.contains(&0) {
            return Err(codec::CodecError::new("TermCounts stores a zero count"));
        }
        Ok(TermCounts { dim, terms, counts })
    }
}

// `dim` then the documents; every document must share the corpus dimension
// (the same invariant `push` asserts).
impl codec::BinCodec for Corpus {
    fn encode_bin(&self, out: &mut Vec<u8>) {
        codec::put_usize(out, self.dim);
        self.docs.encode_bin(out);
    }

    fn decode_bin(r: &mut codec::Reader<'_>) -> Result<Self, codec::CodecError> {
        let dim = r.get_usize()?;
        let docs = Vec::<TermCounts>::decode_bin(r)?;
        if let Some(bad) = docs.iter().find(|d| d.dim() != dim) {
            return Err(codec::CodecError::new(format!(
                "Corpus document dimension {} does not match corpus dimension {dim}",
                bad.dim()
            )));
        }
        Ok(Corpus { dim, docs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_sorts() {
        let mut d = TermCounts::new(10);
        d.record(5, 2).unwrap();
        d.record(1, 1).unwrap();
        d.record(5, 3).unwrap();
        assert_eq!(d.count(5), 5);
        assert_eq!(d.count(1), 1);
        assert_eq!(d.count(0), 0);
        assert_eq!(d.total(), 6);
        assert_eq!(d.distinct_terms(), 2);
        let order: Vec<_> = d.iter().map(|(t, _)| t).collect();
        assert_eq!(order, vec![1, 5]);
    }

    #[test]
    fn record_rejects_out_of_range() {
        let mut d = TermCounts::new(4);
        assert!(d.record(4, 1).is_err());
    }

    #[test]
    fn record_zero_is_noop() {
        let mut d = TermCounts::new(4);
        d.record(1, 0).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn from_pairs_merges_and_drops_zero() {
        let d = TermCounts::from_pairs(8, [(3, 2), (3, 3), (1, 0)]).unwrap();
        assert_eq!(d.count(3), 5);
        assert_eq!(d.distinct_terms(), 1);
    }

    #[test]
    fn dense_round_trip() {
        let d = TermCounts::from_dense(&[0, 3, 0, 7]);
        assert_eq!(d.count(1), 3);
        assert_eq!(d.count(3), 7);
        assert_eq!(d.dim(), 4);
        let s = d.to_sparse();
        assert_eq!(s.get(3), 7.0);
    }

    #[test]
    fn corpus_document_frequencies() {
        let mut c = Corpus::new(4);
        c.push(TermCounts::from_pairs(4, [(0, 1), (1, 1)]).unwrap());
        c.push(TermCounts::from_pairs(4, [(0, 9)]).unwrap());
        c.push(TermCounts::from_pairs(4, [(0, 2), (2, 1)]).unwrap());
        assert_eq!(c.document_frequencies(), vec![3, 1, 1, 0]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    #[should_panic(expected = "does not match corpus dimension")]
    fn corpus_rejects_mismatched_dim() {
        let mut c = Corpus::new(4);
        c.push(TermCounts::new(5));
    }

    #[test]
    fn corpus_from_iterator_and_extend() {
        let docs = vec![
            TermCounts::from_pairs(3, [(0, 1)]).unwrap(),
            TermCounts::from_pairs(3, [(1, 1)]).unwrap(),
        ];
        let mut c: Corpus = docs.into_iter().collect();
        assert_eq!(c.len(), 2);
        assert_eq!(c.dim(), 3);
        c.extend([TermCounts::from_pairs(3, [(2, 2)]).unwrap()]);
        assert_eq!(c.len(), 3);
        let docs: Vec<TermCounts> = c.into_iter().collect();
        assert_eq!(docs.len(), 3);
        assert_eq!(docs[2].count(2), 2);
    }
}
