use serde::{Deserialize, Serialize};

use crate::{IrError, SparseVec, TermId};

/// Distance/similarity metric selector used by the clustering code.
///
/// The paper compares vectors "using the Euclidean distance, i.e. the
/// distance metric induced by the L2 norm" unless stated otherwise; cosine
/// and L1 are provided for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Metric {
    /// L2 (Euclidean) distance — the paper's default.
    #[default]
    Euclidean,
    /// L1 (Manhattan) distance.
    Manhattan,
    /// General Minkowski distance of order `p >= 1`.
    Minkowski(f64),
    /// Cosine *distance* `1 - cos(theta)`; zero vectors are treated as
    /// maximally distant from everything (distance 1).
    Cosine,
}

impl Metric {
    /// Computes the distance between two vectors under this metric.
    ///
    /// All metrics run as a single fused merge-join over the two sorted
    /// `(term, value)` lists — no intermediate difference vector is
    /// allocated.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimensionMismatch`] when the dimensions differ and
    /// [`IrError::InvalidOrder`] for a Minkowski order `p < 1`.
    pub fn distance(&self, a: &SparseVec, b: &SparseVec) -> Result<f64, IrError> {
        a.check_dim(b)?;
        self.validate()?;
        Ok(self.distance_slices_unchecked(a.terms(), a.values(), b.terms(), b.values()))
    }

    /// Computes the *squared* distance between two vectors.
    ///
    /// Argmin/argmax loops (K-means assignment, k-means++ D² sampling,
    /// inertia accumulation) only need a monotone key, so the Euclidean
    /// case skips the sqrt/square round trip entirely; other metrics
    /// square their distance.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Metric::distance`].
    pub fn distance_sq(&self, a: &SparseVec, b: &SparseVec) -> Result<f64, IrError> {
        a.check_dim(b)?;
        self.validate()?;
        Ok(self.distance_sq_slices_unchecked(a.terms(), a.values(), b.terms(), b.values()))
    }

    /// Slice-level variant of [`Metric::distance`] for callers that keep
    /// vectors in a packed layout (e.g. [`CsrMatrix`](crate::CsrMatrix)
    /// rows or reusable centroid buffers). The slices must be sorted by
    /// term id and belong to the same vector space; no dimension check is
    /// possible at this level.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidOrder`] for a Minkowski order `p < 1`.
    pub fn distance_slices(
        &self,
        a_terms: &[TermId],
        a_values: &[f64],
        b_terms: &[TermId],
        b_values: &[f64],
    ) -> Result<f64, IrError> {
        self.validate()?;
        Ok(self.distance_slices_unchecked(a_terms, a_values, b_terms, b_values))
    }

    /// Slice-level variant of [`Metric::distance_sq`].
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidOrder`] for a Minkowski order `p < 1`.
    pub fn distance_sq_slices(
        &self,
        a_terms: &[TermId],
        a_values: &[f64],
        b_terms: &[TermId],
        b_values: &[f64],
    ) -> Result<f64, IrError> {
        self.validate()?;
        Ok(self.distance_sq_slices_unchecked(a_terms, a_values, b_terms, b_values))
    }

    /// Checks the metric's parameters once, so hot loops can validate
    /// before entering and treat every per-pair kernel as infallible.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidOrder`] for a Minkowski order `p < 1`
    /// (or NaN); every other metric is always valid.
    pub fn validate(&self) -> Result<(), IrError> {
        match *self {
            Metric::Minkowski(p) if p < 1.0 || p.is_nan() => Err(IrError::InvalidOrder(p)),
            _ => Ok(()),
        }
    }

    /// Infallible per-pair kernel; callers must have run
    /// [`Metric::validate`] first.
    pub(crate) fn distance_slices_unchecked(
        &self,
        a_terms: &[TermId],
        a_values: &[f64],
        b_terms: &[TermId],
        b_values: &[f64],
    ) -> f64 {
        match *self {
            Metric::Euclidean => euclidean_sq_kernel(a_terms, a_values, b_terms, b_values).sqrt(),
            Metric::Manhattan => manhattan_kernel(a_terms, a_values, b_terms, b_values),
            Metric::Minkowski(p) => minkowski_kernel(a_terms, a_values, b_terms, b_values, p),
            Metric::Cosine => 1.0 - cosine_similarity_kernel(a_terms, a_values, b_terms, b_values),
        }
    }

    /// Infallible squared-distance kernel; callers must have run
    /// [`Metric::validate`] first. Euclidean avoids the sqrt entirely.
    pub(crate) fn distance_sq_slices_unchecked(
        &self,
        a_terms: &[TermId],
        a_values: &[f64],
        b_terms: &[TermId],
        b_values: &[f64],
    ) -> f64 {
        match *self {
            Metric::Euclidean => euclidean_sq_kernel(a_terms, a_values, b_terms, b_values),
            _ => {
                let d = self.distance_slices_unchecked(a_terms, a_values, b_terms, b_values);
                d * d
            }
        }
    }
}

/// Folds `visit(a_i, b_i)` over the union of the two sorted term lists —
/// the single merge-join loop every distance kernel is built on.
#[inline]
fn merge_join(
    a_terms: &[TermId],
    a_values: &[f64],
    b_terms: &[TermId],
    b_values: &[f64],
    mut visit: impl FnMut(f64, f64),
) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a_terms.len() && j < b_terms.len() {
        match a_terms[i].cmp(&b_terms[j]) {
            std::cmp::Ordering::Less => {
                visit(a_values[i], 0.0);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                visit(0.0, b_values[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                visit(a_values[i], b_values[j]);
                i += 1;
                j += 1;
            }
        }
    }
    for &v in &a_values[i..] {
        visit(v, 0.0);
    }
    for &v in &b_values[j..] {
        visit(0.0, v);
    }
}

#[inline]
pub(crate) fn euclidean_sq_kernel(
    a_terms: &[TermId],
    a_values: &[f64],
    b_terms: &[TermId],
    b_values: &[f64],
) -> f64 {
    let mut acc = 0.0;
    merge_join(a_terms, a_values, b_terms, b_values, |x, y| {
        let d = x - y;
        acc += d * d;
    });
    acc
}

#[inline]
fn manhattan_kernel(
    a_terms: &[TermId],
    a_values: &[f64],
    b_terms: &[TermId],
    b_values: &[f64],
) -> f64 {
    let mut acc = 0.0;
    merge_join(a_terms, a_values, b_terms, b_values, |x, y| {
        acc += (x - y).abs();
    });
    acc
}

#[inline]
fn minkowski_kernel(
    a_terms: &[TermId],
    a_values: &[f64],
    b_terms: &[TermId],
    b_values: &[f64],
    p: f64,
) -> f64 {
    let mut acc = 0.0;
    merge_join(a_terms, a_values, b_terms, b_values, |x, y| {
        acc += (x - y).abs().powf(p);
    });
    acc.powf(1.0 / p)
}

#[inline]
pub(crate) fn cosine_similarity_kernel(
    a_terms: &[TermId],
    a_values: &[f64],
    b_terms: &[TermId],
    b_values: &[f64],
) -> f64 {
    let dot = dot_slices(a_terms, a_values, b_terms, b_values);
    let denom = sq_norm(a_values).sqrt() * sq_norm(b_values).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    (dot / denom).clamp(-1.0, 1.0)
}

/// Cosine similarity kernel reusing externally cached L2 norms (the CSR
/// matrix and the K-means hot path precompute them once per row).
#[inline]
pub(crate) fn cosine_similarity_with_norms(
    a_terms: &[TermId],
    a_values: &[f64],
    b_terms: &[TermId],
    b_values: &[f64],
    a_norm: f64,
    b_norm: f64,
) -> f64 {
    let denom = a_norm * b_norm;
    if denom == 0.0 {
        return 0.0;
    }
    let dot = dot_slices(a_terms, a_values, b_terms, b_values);
    (dot / denom).clamp(-1.0, 1.0)
}

#[inline]
pub(crate) fn sq_norm(values: &[f64]) -> f64 {
    values.iter().map(|v| v * v).sum()
}

/// Dot product of two sparse `(terms, values)` slice pairs, both sorted by
/// term id. Only matching terms contribute, so the loop skips disjoint
/// stretches without touching their values.
pub fn dot_slices(
    a_terms: &[TermId],
    a_values: &[f64],
    b_terms: &[TermId],
    b_values: &[f64],
) -> f64 {
    let mut acc = 0.0;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a_terms.len() && j < b_terms.len() {
        match a_terms[i].cmp(&b_terms[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc += a_values[i] * b_values[j];
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

/// Dot product of a sparse `(terms, values)` pair against a dense vector,
/// in O(nnz) — the K-means assignment inner product `x · c`.
///
/// # Panics
///
/// Panics if any term id is out of range for `dense`.
pub fn dot_sparse_dense(terms: &[TermId], values: &[f64], dense: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (&t, &v) in terms.iter().zip(values) {
        acc += v * dense[t as usize];
    }
    acc
}

/// Euclidean (L2) distance between two sparse vectors.
///
/// # Errors
///
/// Returns [`IrError::DimensionMismatch`] when the dimensions differ.
///
/// # Examples
///
/// ```
/// use fmeter_ir::{euclidean_distance, SparseVec};
///
/// let a = SparseVec::from_pairs(4, [(0, 1.0)]).unwrap();
/// let b = SparseVec::from_pairs(4, [(1, 1.0)]).unwrap();
/// assert!((euclidean_distance(&a, &b).unwrap() - 2f64.sqrt()).abs() < 1e-12);
/// ```
pub fn euclidean_distance(a: &SparseVec, b: &SparseVec) -> Result<f64, IrError> {
    Ok(euclidean_distance_sq(a, b)?.sqrt())
}

/// Squared Euclidean distance, computed without the sqrt/square round trip.
///
/// # Errors
///
/// Returns [`IrError::DimensionMismatch`] when the dimensions differ.
pub fn euclidean_distance_sq(a: &SparseVec, b: &SparseVec) -> Result<f64, IrError> {
    a.check_dim(b)?;
    Ok(euclidean_sq_kernel(
        a.terms(),
        a.values(),
        b.terms(),
        b.values(),
    ))
}

/// Manhattan (L1) distance between two sparse vectors.
///
/// # Errors
///
/// Returns [`IrError::DimensionMismatch`] when the dimensions differ.
pub fn manhattan_distance(a: &SparseVec, b: &SparseVec) -> Result<f64, IrError> {
    a.check_dim(b)?;
    Ok(manhattan_kernel(
        a.terms(),
        a.values(),
        b.terms(),
        b.values(),
    ))
}

/// Minkowski distance `d_p(x, y) = (sum_i |x_i - y_i|^p)^(1/p)`.
///
/// This is the distance induced by the Lp norm, exactly as defined in §2.1 of
/// the paper.
///
/// # Errors
///
/// Returns [`IrError::DimensionMismatch`] when the dimensions differ and
/// [`IrError::InvalidOrder`] when `p < 1` (the expression is not a metric
/// below order 1).
pub fn minkowski_distance(a: &SparseVec, b: &SparseVec, p: f64) -> Result<f64, IrError> {
    a.check_dim(b)?;
    Metric::Minkowski(p).validate()?;
    Ok(minkowski_kernel(
        a.terms(),
        a.values(),
        b.terms(),
        b.values(),
        p,
    ))
}

/// Cosine similarity `cos(theta) = (x . y) / (||x|| ||y||)`.
///
/// Two identical directions give `1.0`; orthogonal vectors give `0.0`. When
/// either vector is zero the similarity is defined as `0.0` (no direction to
/// agree with) rather than NaN, which keeps downstream clustering total.
/// The result is clamped to `[-1, 1]` to absorb floating-point drift.
///
/// # Errors
///
/// Returns [`IrError::DimensionMismatch`] when the dimensions differ.
///
/// # Examples
///
/// ```
/// use fmeter_ir::{cosine_similarity, SparseVec};
///
/// let a = SparseVec::from_pairs(3, [(0, 1.0), (1, 1.0)]).unwrap();
/// let b = SparseVec::from_pairs(3, [(0, 2.0), (1, 2.0)]).unwrap();
/// assert!((cosine_similarity(&a, &b).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn cosine_similarity(a: &SparseVec, b: &SparseVec) -> Result<f64, IrError> {
    a.check_dim(b)?;
    Ok(cosine_similarity_kernel(
        a.terms(),
        a.values(),
        b.terms(),
        b.values(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f64)]) -> SparseVec {
        SparseVec::from_pairs(8, pairs.iter().copied()).unwrap()
    }

    #[test]
    fn euclidean_345() {
        let a = v(&[(0, 3.0)]);
        let b = v(&[(1, 4.0)]);
        assert!((euclidean_distance(&a, &b).unwrap() - 5.0).abs() < 1e-12);
        assert!((euclidean_distance_sq(&a, &b).unwrap() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_is_sum_of_abs() {
        let a = v(&[(0, 3.0)]);
        let b = v(&[(1, 4.0)]);
        assert!((manhattan_distance(&a, &b).unwrap() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn minkowski_interpolates_l1_l2() {
        let a = v(&[(0, 3.0)]);
        let b = v(&[(1, 4.0)]);
        let d1 = minkowski_distance(&a, &b, 1.0).unwrap();
        let d2 = minkowski_distance(&a, &b, 2.0).unwrap();
        let d15 = minkowski_distance(&a, &b, 1.5).unwrap();
        assert!(d2 < d15 && d15 < d1);
    }

    #[test]
    fn minkowski_rejects_sub_unit_order() {
        let a = v(&[(0, 1.0)]);
        assert!(matches!(
            minkowski_distance(&a, &a, 0.9),
            Err(IrError::InvalidOrder(_))
        ));
    }

    #[test]
    fn cosine_parallel_orthogonal_antiparallel() {
        let a = v(&[(0, 1.0)]);
        let b = v(&[(0, 7.0)]);
        let c = v(&[(1, 1.0)]);
        let d = v(&[(0, -2.0)]);
        assert!((cosine_similarity(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&a, &c).unwrap(), 0.0);
        assert!((cosine_similarity(&a, &d).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        let z = SparseVec::zeros(8);
        let a = v(&[(0, 1.0)]);
        assert_eq!(cosine_similarity(&z, &a).unwrap(), 0.0);
        assert_eq!(cosine_similarity(&z, &z).unwrap(), 0.0);
    }

    #[test]
    fn metric_enum_dispatches() {
        let a = v(&[(0, 3.0)]);
        let b = v(&[(1, 4.0)]);
        assert!((Metric::Euclidean.distance(&a, &b).unwrap() - 5.0).abs() < 1e-12);
        assert!((Metric::Manhattan.distance(&a, &b).unwrap() - 7.0).abs() < 1e-12);
        assert!((Metric::Minkowski(2.0).distance(&a, &b).unwrap() - 5.0).abs() < 1e-12);
        assert!((Metric::Cosine.distance(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(Metric::default(), Metric::Euclidean);
    }

    #[test]
    fn cosine_distance_identical_vectors_is_zero() {
        let a = v(&[(0, 1.0), (3, 2.0)]);
        assert!(Metric::Cosine.distance(&a, &a).unwrap().abs() < 1e-12);
    }

    #[test]
    fn distance_sq_is_square_of_distance() {
        let a = v(&[(0, 3.0), (2, -1.0)]);
        let b = v(&[(1, 4.0), (2, 2.5)]);
        for m in [
            Metric::Euclidean,
            Metric::Manhattan,
            Metric::Minkowski(3.0),
            Metric::Cosine,
        ] {
            let d = m.distance(&a, &b).unwrap();
            let d2 = m.distance_sq(&a, &b).unwrap();
            assert!((d2 - d * d).abs() < 1e-12, "{m:?}: {d2} vs {}", d * d);
        }
    }

    #[test]
    fn distance_sq_rejects_dim_mismatch_and_bad_order() {
        let a = SparseVec::zeros(3);
        let b = SparseVec::zeros(4);
        assert!(Metric::Euclidean.distance_sq(&a, &b).is_err());
        assert!(matches!(
            Metric::Minkowski(0.2).distance_sq(&a, &a),
            Err(IrError::InvalidOrder(_))
        ));
        assert!(matches!(
            Metric::Minkowski(f64::NAN).distance_slices(&[], &[], &[], &[]),
            Err(IrError::InvalidOrder(_))
        ));
    }

    #[test]
    fn slice_kernels_match_vector_api() {
        let a = v(&[(0, 1.0), (3, -2.0), (6, 0.5)]);
        let b = v(&[(3, 4.0), (5, 1.5)]);
        let m = Metric::Euclidean;
        let via_vec = m.distance(&a, &b).unwrap();
        let via_slices = m
            .distance_slices(a.terms(), a.values(), b.terms(), b.values())
            .unwrap();
        assert_eq!(via_vec, via_slices);
        assert_eq!(
            dot_slices(a.terms(), a.values(), b.terms(), b.values()),
            a.dot(&b).unwrap()
        );
    }

    #[test]
    fn dot_sparse_dense_matches_sparse_dot() {
        let a = v(&[(1, 2.0), (4, -3.0)]);
        let b = v(&[(1, 0.5), (2, 9.0), (4, 1.0)]);
        let dense = b.to_dense();
        assert_eq!(
            dot_sparse_dense(a.terms(), a.values(), &dense),
            a.dot(&b).unwrap()
        );
    }
}
