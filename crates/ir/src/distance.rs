use serde::{Deserialize, Serialize};

use crate::{IrError, SparseVec};

/// Distance/similarity metric selector used by the clustering code.
///
/// The paper compares vectors "using the Euclidean distance, i.e. the
/// distance metric induced by the L2 norm" unless stated otherwise; cosine
/// and L1 are provided for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Metric {
    /// L2 (Euclidean) distance — the paper's default.
    #[default]
    Euclidean,
    /// L1 (Manhattan) distance.
    Manhattan,
    /// General Minkowski distance of order `p >= 1`.
    Minkowski(f64),
    /// Cosine *distance* `1 - cos(theta)`; zero vectors are treated as
    /// maximally distant from everything (distance 1).
    Cosine,
}

impl Metric {
    /// Computes the distance between two vectors under this metric.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimensionMismatch`] when the dimensions differ and
    /// [`IrError::InvalidOrder`] for a Minkowski order `p < 1`.
    pub fn distance(&self, a: &SparseVec, b: &SparseVec) -> Result<f64, IrError> {
        match *self {
            Metric::Euclidean => euclidean_distance(a, b),
            Metric::Manhattan => manhattan_distance(a, b),
            Metric::Minkowski(p) => minkowski_distance(a, b, p),
            Metric::Cosine => Ok(1.0 - cosine_similarity(a, b)?),
        }
    }
}

/// Euclidean (L2) distance between two sparse vectors.
///
/// # Errors
///
/// Returns [`IrError::DimensionMismatch`] when the dimensions differ.
///
/// # Examples
///
/// ```
/// use fmeter_ir::{euclidean_distance, SparseVec};
///
/// let a = SparseVec::from_pairs(4, [(0, 1.0)]).unwrap();
/// let b = SparseVec::from_pairs(4, [(1, 1.0)]).unwrap();
/// assert!((euclidean_distance(&a, &b).unwrap() - 2f64.sqrt()).abs() < 1e-12);
/// ```
pub fn euclidean_distance(a: &SparseVec, b: &SparseVec) -> Result<f64, IrError> {
    Ok(a.sub(b)?.norm_l2())
}

/// Manhattan (L1) distance between two sparse vectors.
///
/// # Errors
///
/// Returns [`IrError::DimensionMismatch`] when the dimensions differ.
pub fn manhattan_distance(a: &SparseVec, b: &SparseVec) -> Result<f64, IrError> {
    Ok(a.sub(b)?.norm_l1())
}

/// Minkowski distance `d_p(x, y) = (sum_i |x_i - y_i|^p)^(1/p)`.
///
/// This is the distance induced by the Lp norm, exactly as defined in §2.1 of
/// the paper.
///
/// # Errors
///
/// Returns [`IrError::DimensionMismatch`] when the dimensions differ and
/// [`IrError::InvalidOrder`] when `p < 1` (the expression is not a metric
/// below order 1).
pub fn minkowski_distance(a: &SparseVec, b: &SparseVec, p: f64) -> Result<f64, IrError> {
    a.sub(b)?.norm_lp(p)
}

/// Cosine similarity `cos(theta) = (x . y) / (||x|| ||y||)`.
///
/// Two identical directions give `1.0`; orthogonal vectors give `0.0`. When
/// either vector is zero the similarity is defined as `0.0` (no direction to
/// agree with) rather than NaN, which keeps downstream clustering total.
/// The result is clamped to `[-1, 1]` to absorb floating-point drift.
///
/// # Errors
///
/// Returns [`IrError::DimensionMismatch`] when the dimensions differ.
///
/// # Examples
///
/// ```
/// use fmeter_ir::{cosine_similarity, SparseVec};
///
/// let a = SparseVec::from_pairs(3, [(0, 1.0), (1, 1.0)]).unwrap();
/// let b = SparseVec::from_pairs(3, [(0, 2.0), (1, 2.0)]).unwrap();
/// assert!((cosine_similarity(&a, &b).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn cosine_similarity(a: &SparseVec, b: &SparseVec) -> Result<f64, IrError> {
    let dot = a.dot(b)?;
    let denom = a.norm_l2() * b.norm_l2();
    if denom == 0.0 {
        return Ok(0.0);
    }
    Ok((dot / denom).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f64)]) -> SparseVec {
        SparseVec::from_pairs(8, pairs.iter().copied()).unwrap()
    }

    #[test]
    fn euclidean_345() {
        let a = v(&[(0, 3.0)]);
        let b = v(&[(1, 4.0)]);
        assert!((euclidean_distance(&a, &b).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_is_sum_of_abs() {
        let a = v(&[(0, 3.0)]);
        let b = v(&[(1, 4.0)]);
        assert!((manhattan_distance(&a, &b).unwrap() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn minkowski_interpolates_l1_l2() {
        let a = v(&[(0, 3.0)]);
        let b = v(&[(1, 4.0)]);
        let d1 = minkowski_distance(&a, &b, 1.0).unwrap();
        let d2 = minkowski_distance(&a, &b, 2.0).unwrap();
        let d15 = minkowski_distance(&a, &b, 1.5).unwrap();
        assert!(d2 < d15 && d15 < d1);
    }

    #[test]
    fn minkowski_rejects_sub_unit_order() {
        let a = v(&[(0, 1.0)]);
        assert!(matches!(
            minkowski_distance(&a, &a, 0.9),
            Err(IrError::InvalidOrder(_))
        ));
    }

    #[test]
    fn cosine_parallel_orthogonal_antiparallel() {
        let a = v(&[(0, 1.0)]);
        let b = v(&[(0, 7.0)]);
        let c = v(&[(1, 1.0)]);
        let d = v(&[(0, -2.0)]);
        assert!((cosine_similarity(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&a, &c).unwrap(), 0.0);
        assert!((cosine_similarity(&a, &d).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        let z = SparseVec::zeros(8);
        let a = v(&[(0, 1.0)]);
        assert_eq!(cosine_similarity(&z, &a).unwrap(), 0.0);
        assert_eq!(cosine_similarity(&z, &z).unwrap(), 0.0);
    }

    #[test]
    fn metric_enum_dispatches() {
        let a = v(&[(0, 3.0)]);
        let b = v(&[(1, 4.0)]);
        assert!((Metric::Euclidean.distance(&a, &b).unwrap() - 5.0).abs() < 1e-12);
        assert!((Metric::Manhattan.distance(&a, &b).unwrap() - 7.0).abs() < 1e-12);
        assert!((Metric::Minkowski(2.0).distance(&a, &b).unwrap() - 5.0).abs() < 1e-12);
        assert!((Metric::Cosine.distance(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(Metric::default(), Metric::Euclidean);
    }

    #[test]
    fn cosine_distance_identical_vectors_is_zero() {
        let a = v(&[(0, 1.0), (3, 2.0)]);
        assert!(Metric::Cosine.distance(&a, &a).unwrap().abs() < 1e-12);
    }
}
