//! Approximate nearest-neighbour search over sparse signatures: a
//! hierarchical navigable small-world (HNSW) graph.
//!
//! The clustering stack needs k-NN lists for tens of thousands of
//! signatures; computing them exactly is the O(n²) condensed-matrix
//! wall this module exists to avoid. An [`AnnGraph`] keeps a stack of
//! undirected proximity graphs over the inserted vectors: every node
//! lives on layer 0, a geometrically thinning subset also lives on the
//! layers above, and each node links to (up to) `max_degree` near
//! neighbours per layer. A query descends greedily through the sparse
//! upper layers — which provide the long-range routing between distant
//! regions of the space — and finishes with a best-first beam of width
//! `ef` on layer 0, touching O(ef · degree) vectors instead of all n.
//!
//! Design points, in the idiom of the rest of the crate:
//!
//! * **Storage is a [`CsrMatrix`]** — the same packed row layout the
//!   batch clustering paths use, so distance evaluations run the fused
//!   merge-join kernels directly on row slices with no per-candidate
//!   allocation.
//! * **Incremental insert/remove.** Inserts attach a node to its
//!   `ef_construction`-beam neighbourhood on every layer it occupies;
//!   removals detach the node and re-link its former neighbours among
//!   themselves, layer by layer, so the graph stays navigable next to a
//!   streaming store. Row slots, like
//!   [`InvertedIndex`](crate::InvertedIndex) doc ids, are never reused.
//! * **Deterministic.** No randomness anywhere: a slot's layer count is
//!   a fixed function of its id (a base-4 skip-list level, matching
//!   HNSW's geometric distribution in expectation), and candidate order
//!   is total (distance, then id), so the same insert sequence always
//!   yields the same graph and the same query always returns the same
//!   answer.
//! * **Diversity-pruned edges.** Degree overflow is resolved with the
//!   HNSW neighbour-selection heuristic rather than closest-first,
//!   which keeps the bridge edges between far-apart clusters alive (see
//!   [`select_diverse`](AnnGraph::select_diverse)).
//!
//! The graph answers *approximate* queries: recall is tuned by `ef`
//! (searches) and `ef_construction`/`max_degree` (build quality). The
//! exact-oracle contract — what is pinned against brute force and where
//! approximation is allowed — is documented in `docs/CLUSTERING.md`.

use std::collections::{BTreeMap, BinaryHeap};

use crate::distance::Metric;
use crate::error::IrError;
use crate::matrix::CsrMatrix;
use crate::sparse::SparseVec;
use crate::{DocId, TermId};

/// Default maximum degree of a node per layer (HNSW's `M`).
pub const DEFAULT_MAX_DEGREE: usize = 16;

/// Default construction-time beam width (HNSW's `efConstruction`).
pub const DEFAULT_EF_CONSTRUCTION: usize = 64;

/// Hard cap on the layer stack (slot ids would need to reach 4^16
/// before it binds).
const MAX_LEVEL: usize = 16;

/// A candidate in a beam search, ordered by distance then node id so
/// every heap decision is deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cand {
    dist: f64,
    node: u32,
}

impl Eq for Cand {}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then(self.node.cmp(&other.node))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The splitmix64 finalizer: a cheap, high-quality bijective mixer.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The deterministic level of slot `id`: the number of trailing base-4
/// zeros of a mixed hash of the id. One slot in 4 reaches layer 1, one
/// in 16 layer 2, and so on — the same geometric thinning HNSW draws
/// from its RNG, replayable from the id alone. Hashing matters: a plain
/// skip-list rule like `trailing_zeros(id + 1)` makes the level a
/// periodic function of the id, and any corpus whose structure also
/// cycles over ids (round-robin class interleaving, say) aliases with
/// it — entire classes end up with no upper-layer presence and become
/// unroutable.
fn level_of(id: usize) -> usize {
    ((mix64(id as u64).trailing_zeros() / 2) as usize).min(MAX_LEVEL)
}

/// An incremental hierarchical navigable-small-world graph over sparse
/// vectors.
///
/// The module-level docs above cover the design; `docs/CLUSTERING.md`
/// has the accuracy contract. Typical use:
///
/// ```
/// use fmeter_ir::{AnnGraph, SparseVec};
///
/// let mut graph = AnnGraph::new(8);
/// for v in [
///     SparseVec::from_pairs(8, [(0, 1.0)]).unwrap(),
///     SparseVec::from_pairs(8, [(1, 1.0)]).unwrap(),
///     SparseVec::from_pairs(8, [(0, 0.9), (1, 0.1)]).unwrap(),
/// ] {
///     graph.insert(&v).unwrap();
/// }
/// let query = SparseVec::from_pairs(8, [(0, 1.0)]).unwrap();
/// let hits = graph.knn(&query, 2, 16).unwrap();
/// assert_eq!(hits[0].0, 0); // exact match ranks first
/// ```
#[derive(Debug, Clone)]
pub struct AnnGraph {
    metric: Metric,
    max_degree: usize,
    ef_construction: usize,
    /// Row slot `i` stores the vector of node `i` (dead slots keep
    /// their row — slots are never reused, mirroring the tombstone
    /// contract of the inverted index).
    rows: CsrMatrix,
    /// Per slot: one adjacency list per layer the slot occupies
    /// (`layers[i].len() == level_of(i) + 1`); dead slots hold empty
    /// lists on every layer.
    layers: Vec<Vec<Vec<u32>>>,
    live: Vec<bool>,
    num_live: usize,
    /// Searches start here (a live node of maximal level); repaired on
    /// removal.
    entry: Option<u32>,
}

impl AnnGraph {
    /// An empty graph over a `dim`-dimensional space with default
    /// parameters ([`DEFAULT_MAX_DEGREE`], [`DEFAULT_EF_CONSTRUCTION`],
    /// Euclidean distance).
    pub fn new(dim: usize) -> Self {
        AnnGraph {
            metric: Metric::Euclidean,
            max_degree: DEFAULT_MAX_DEGREE,
            ef_construction: DEFAULT_EF_CONSTRUCTION,
            rows: CsrMatrix::new(dim),
            layers: Vec::new(),
            live: Vec::new(),
            num_live: 0,
            entry: None,
        }
    }

    /// Replaces the metric (builder style; call before inserting).
    #[must_use]
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Replaces the maximum per-layer node degree (clamped to at least 2).
    #[must_use]
    pub fn max_degree(mut self, max_degree: usize) -> Self {
        self.max_degree = max_degree.max(2);
        self
    }

    /// Replaces the construction-time beam width (clamped to at least 1).
    #[must_use]
    pub fn ef_construction(mut self, ef: usize) -> Self {
        self.ef_construction = ef.max(1);
        self
    }

    /// Builds a graph over `points` with [`extend`](Self::extend) —
    /// the bulk-load path, with the same id assignment (and therefore
    /// the same level schedule) as inserting in order.
    ///
    /// # Errors
    ///
    /// Propagates a dimension mismatch from any point.
    pub fn build(dim: usize, points: &[SparseVec]) -> Result<Self, IrError> {
        let mut graph = AnnGraph::new(dim);
        graph.extend(points)?;
        Ok(graph)
    }

    /// Inserts `points` and returns their node ids (consecutive, in
    /// order). On an empty graph this is the bulk-load path: candidate
    /// neighbours per layer come from inverted-index term blocking —
    /// postings over the members' terms (skipping near-ubiquitous
    /// terms), shared-term counting, and exact-distance ranking of the
    /// most-co-occurring candidates — instead of per-insert beam
    /// searches. Sparse signatures that are near each other must share
    /// terms, so blocking recovers the same neighbourhoods O(n · budget)
    /// exact evaluations, where the per-insert beams cost an
    /// ef_construction-wide search each; at 10k points bulk loading is
    /// several times faster *and* links against exact local distances
    /// rather than whatever an incremental beam happened to see. The
    /// edges then go through the same diversity selection and
    /// link/prune machinery as [`insert`](Self::insert), in id order,
    /// so the result is deterministic and the graph remains fully
    /// incremental afterwards. On a non-empty graph this falls back to
    /// ordered inserts.
    ///
    /// # Errors
    ///
    /// Returns a dimension mismatch when any point does not match the
    /// graph's space (checked up front on the bulk path, where the
    /// graph is unchanged on error).
    pub fn extend(&mut self, points: &[SparseVec]) -> Result<Vec<DocId>, IrError> {
        if self.num_slots() != 0 {
            return points.iter().map(|p| self.insert(p)).collect();
        }
        for p in points {
            if p.dim() != self.dim() {
                return Err(IrError::DimensionMismatch {
                    left: self.dim(),
                    right: p.dim(),
                });
            }
        }
        let n = points.len();
        let mut ids = Vec::with_capacity(n);
        let mut top = 0;
        for p in points {
            let id = self.rows.push_row(p)?;
            let level = level_of(id);
            self.layers.push(vec![Vec::new(); level + 1]);
            self.live.push(true);
            top = top.max(level);
            ids.push(id);
        }
        self.num_live = n;
        // Entry: the live node of maximal level, smallest id on ties —
        // the same rule `remove` re-establishes.
        self.entry = (0..n)
            .map(|d| d as u32)
            .max_by_key(|&d| (self.layers[d as usize].len(), u32::MAX - d));
        for layer in 0..=top {
            let members: Vec<u32> = (0..n as u32)
                .filter(|&d| self.layers[d as usize].len() > layer)
                .collect();
            if members.len() < 2 {
                continue;
            }
            // Select below the degree cap: the headroom keeps the
            // bridge edges added next from overflowing their endpoints
            // — an overflow would put a ~max-distance bridge through
            // the diversity prune, which usually evicts it and
            // re-fragments the layer.
            let select = self.max_degree.saturating_sub(2).max(2);
            let lists = self.block_candidates(&members);
            for (mi, ranked) in lists.into_iter().enumerate() {
                for nb in self.select_diverse(&ranked, select, true) {
                    self.link(members[mi], nb, layer);
                }
            }
            self.bridge_layer(&members, layer);
        }
        Ok(ids)
    }

    /// Connects a bulk-loaded layer when blocking left it in multiple
    /// components. Term blocking can only propose candidates that
    /// *share* a term, so mutually disjoint clusters — the normal shape
    /// of a signature corpus — produce one island per cluster and no
    /// route between them; search then never leaves the island it
    /// descends into. Each pass links every component to its nearest
    /// other component by exact distance over a few representatives
    /// (the long-range edges HNSW needs for navigability), and repeats
    /// because a link on a full node may be diversity-pruned away;
    /// component count at least halves per surviving pass.
    fn bridge_layer(&mut self, members: &[u32], layer: usize) {
        const REPS: usize = 8;
        const MAX_PASSES: usize = 16;
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        let mut pos = vec![u32::MAX; self.num_slots()];
        for (i, &d) in members.iter().enumerate() {
            pos[d as usize] = i as u32;
        }
        // Bridges already added this call are off-limits to
        // `make_room`: they are the farthest edge of their endpoints by
        // construction, so room-making would evict exactly the edges
        // the previous passes added and the pass loop would never
        // converge.
        let mut protected: Vec<(u32, u32)> = Vec::new();
        for _ in 0..MAX_PASSES {
            let mut parent: Vec<u32> = (0..members.len() as u32).collect();
            for (i, &d) in members.iter().enumerate() {
                for &nb in &self.layers[d as usize][layer] {
                    let (ri, rj) = (
                        find(&mut parent, i as u32),
                        find(&mut parent, pos[nb as usize]),
                    );
                    if ri != rj {
                        parent[ri as usize] = rj;
                    }
                }
            }
            let mut pools: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
            for (i, &d) in members.iter().enumerate() {
                let root = find(&mut parent, i as u32);
                let c = pools.entry(root).or_default();
                if c.len() < 4 * REPS {
                    c.push(d);
                }
            }
            if pools.len() <= 1 {
                return;
            }
            // Representatives with spare degree first: linking them
            // adds the bridge without tripping the diversity prune
            // that would otherwise evict it.
            let comps: Vec<Vec<u32>> = pools
                .into_values()
                .map(|pool| {
                    let (mut spare, full): (Vec<u32>, Vec<u32>) = pool
                        .into_iter()
                        .partition(|&d| self.layers[d as usize][layer].len() < self.max_degree);
                    spare.extend(full);
                    spare
                })
                .collect();
            // Chain consecutive components: one surviving bridge per
            // adjacent pair connects the layer in a single pass, and
            // the endpoints spread over different components instead of
            // accumulating on one hub node whose degree would overflow.
            for w in 0..comps.len() - 1 {
                let mut best: Option<(u32, u32, f64)> = None;
                for &a in comps[w].iter().take(REPS) {
                    let (t, v) = self.rows.row(a as usize);
                    for &b in comps[w + 1].iter().take(REPS) {
                        let d = self.dist_to(t, v, b as usize);
                        if best.is_none_or(|(_, _, bd)| d < bd) {
                            best = Some((a, b, d));
                        }
                    }
                }
                let (a, b, _) = best.expect("components are non-empty");
                // Make room on full endpoints first: letting `link`
                // overflow would put the ~max-distance bridge through
                // the diversity prune, which usually evicts it.
                self.make_room(a, layer, &protected);
                self.make_room(b, layer, &protected);
                self.link(a, b, layer);
                protected.push((a.min(b), a.max(b)));
            }
        }
    }

    /// Drops the farthest unprotected edge of `x` on `layer` (never an
    /// edge that is the counterpart's last one) when `x` is at the
    /// degree cap, so a following [`link`](Self::link) cannot overflow
    /// and trigger the diversity prune.
    fn make_room(&mut self, x: u32, layer: usize, protected: &[(u32, u32)]) {
        if self.layers[x as usize][layer].len() < self.max_degree {
            return;
        }
        let (t, v) = self.rows.row(x as usize);
        let victim = self.layers[x as usize][layer]
            .iter()
            .copied()
            .filter(|&nb| {
                self.layers[nb as usize][layer].len() > 1
                    && !protected.contains(&(x.min(nb), x.max(nb)))
            })
            .map(|nb| Cand {
                dist: self.dist_to(t, v, nb as usize),
                node: nb,
            })
            .max();
        if let Some(victim) = victim {
            self.layers[x as usize][layer].retain(|&nb| nb != victim.node);
            self.layers[victim.node as usize][layer].retain(|&nb| nb != x);
        }
    }

    /// The blocking half of the bulk load: for every member, the
    /// exact-distance-ranked list of its most plausible neighbours
    /// among the other members, found by walking term postings.
    ///
    /// Terms whose member posting list exceeds a frequency cap are
    /// skipped as candidate sources (the stop-term move WAND makes):
    /// a term shared by most of the corpus carries no locality signal
    /// and would make the counting pass quadratic. Of the candidates
    /// that share at least one surviving term, the
    /// `max(ef_construction, 2 · max_degree)` with the highest shared
    /// counts are ranked by exact distance (count ties broken by
    /// member order, distance ties by id — fully deterministic).
    fn block_candidates(&self, members: &[u32]) -> Vec<Vec<Cand>> {
        let m = members.len();
        let cap = (m / 4).max(64);
        let budget = self.ef_construction.max(2 * self.max_degree);
        let mut postings: Vec<Vec<u32>> = vec![Vec::new(); self.dim()];
        for (mi, &id) in members.iter().enumerate() {
            let (terms, _) = self.rows.row(id as usize);
            for &t in terms {
                postings[t as usize].push(mi as u32);
            }
        }
        let mut counts: Vec<u32> = vec![0; m];
        let mut touched: Vec<u32> = Vec::new();
        let mut lists = Vec::with_capacity(m);
        for (mi, &id) in members.iter().enumerate() {
            let (terms, _) = self.rows.row(id as usize);
            for &t in terms {
                let plist = &postings[t as usize];
                if plist.len() > cap {
                    continue;
                }
                for &mj in plist {
                    if mj as usize != mi {
                        if counts[mj as usize] == 0 {
                            touched.push(mj);
                        }
                        counts[mj as usize] += 1;
                    }
                }
            }
            if touched.len() > budget {
                touched.sort_unstable_by_key(|&mj| (std::cmp::Reverse(counts[mj as usize]), mj));
                touched.truncate(budget);
            }
            let (q_terms, q_values) = self.rows.row(id as usize);
            let mut ranked: Vec<Cand> = touched
                .iter()
                .map(|&mj| Cand {
                    dist: self.dist_to(q_terms, q_values, members[mj as usize] as usize),
                    node: members[mj as usize],
                })
                .collect();
            ranked.sort_unstable();
            for mj in touched.drain(..) {
                counts[mj as usize] = 0;
            }
            lists.push(ranked);
        }
        lists
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.num_live
    }

    /// Whether the graph holds no live node.
    pub fn is_empty(&self) -> bool {
        self.num_live == 0
    }

    /// Total slots ever allocated (live + removed).
    pub fn num_slots(&self) -> usize {
        self.layers.len()
    }

    /// Dimensionality of the vector space.
    pub fn dim(&self) -> usize {
        self.rows.dim()
    }

    /// Whether `node` names a live (inserted, not removed) node.
    pub fn is_live(&self, node: DocId) -> bool {
        self.live.get(node).copied().unwrap_or(false)
    }

    /// The layer-0 adjacency list of `node` (empty for dead or unknown
    /// nodes). Every live node is on layer 0, so this is the
    /// neighbourhood the final beam search walks.
    pub fn neighbors(&self, node: DocId) -> &[u32] {
        self.layers
            .get(node)
            .and_then(|l| l.first())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The number of layers `node` occupies (0 for unknown slots; dead
    /// slots keep their layer count — only their edges are gone).
    pub fn num_layers_of(&self, node: DocId) -> usize {
        self.layers.get(node).map(Vec::len).unwrap_or(0)
    }

    /// The adjacency list of `node` on `layer` (empty when the node is
    /// dead, unknown, or does not reach that layer). Layer 0 is
    /// [`neighbors`](Self::neighbors); higher layers expose the routing
    /// hierarchy for diagnostics and stats.
    pub fn layer_neighbors(&self, node: DocId, layer: usize) -> &[u32] {
        self.layers
            .get(node)
            .and_then(|l| l.get(layer))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The stored vector of a node (dead slots still answer — the row
    /// is retained, only the graph linkage is gone).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DocNotLive`] for out-of-range slots.
    pub fn vector(&self, node: DocId) -> Result<SparseVec, IrError> {
        if node >= self.num_slots() {
            return Err(IrError::DocNotLive(node));
        }
        Ok(self.rows.row_to_sparse(node))
    }

    /// Inserts a vector, links it into every layer it occupies, and
    /// returns its node id (the next free slot).
    ///
    /// Cost is one greedy descent plus one `ef_construction`-beam
    /// search per occupied layer — O(ef · degree) distance evaluations,
    /// independent of n.
    ///
    /// # Errors
    ///
    /// Returns a dimension mismatch when `v` does not match the graph's
    /// space.
    pub fn insert(&mut self, v: &SparseVec) -> Result<DocId, IrError> {
        let id = self.rows.push_row(v)?;
        let level = level_of(id);
        self.layers.push(vec![Vec::new(); level + 1]);
        self.live.push(true);
        self.num_live += 1;
        let Some((start, top)) = self.start_node(Some(id as u32)) else {
            // First live node: it is the whole graph.
            self.entry = Some(id as u32);
            return Ok(id);
        };
        // Beam descent through the layers above the new node's level.
        // Carrying the whole beam (not just the greedy best) between
        // layers is what keeps routing reliable when clusters are
        // mutually orthogonal: with no distance gradient between them, a
        // single-entry greedy walk stalls in whatever cluster it starts
        // in, while a beam keeps several regions in play.
        let mut entries = vec![start];
        for l in ((level + 1)..=top).rev() {
            entries = self
                .search_layer(
                    v.terms(),
                    v.values(),
                    self.ef_construction,
                    Some(id as u32),
                    &entries,
                    l,
                )
                .into_iter()
                .map(|c| c.node)
                .collect();
        }
        // Beam-link on every shared layer, top-down; the beam at each
        // layer seeds the next one (every member also lives below).
        for l in (0..=level.min(top)).rev() {
            let beam = self.search_layer(
                v.terms(),
                v.values(),
                self.ef_construction,
                Some(id as u32),
                &entries,
                l,
            );
            let chosen = self.select_diverse(&beam, self.max_degree, true);
            for &nb in &chosen {
                self.link(id as u32, nb, l);
            }
            entries = beam.into_iter().map(|c| c.node).collect();
        }
        if level > top {
            self.entry = Some(id as u32);
        }
        Ok(id)
    }

    /// Removes a node: detaches it on every layer and re-links its
    /// former neighbours among themselves so each layer stays locally
    /// connected.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DocNotLive`] when `node` was never inserted
    /// or is already removed.
    pub fn remove(&mut self, node: DocId) -> Result<(), IrError> {
        if !self.is_live(node) {
            return Err(IrError::DocNotLive(node));
        }
        self.live[node] = false;
        self.num_live -= 1;
        for l in 0..self.layers[node].len() {
            let orphans = std::mem::take(&mut self.layers[node][l]);
            for &nb in &orphans {
                self.layers[nb as usize][l].retain(|&x| x as usize != node);
            }
            // Re-link the orphaned neighbourhood pairwise (degree-capped):
            // the removed node may have been the only bridge between them.
            for (i, &a) in orphans.iter().enumerate() {
                for &b in &orphans[i + 1..] {
                    if self.layers[a as usize][l].len() < self.max_degree
                        && self.layers[b as usize][l].len() < self.max_degree
                        && !self.layers[a as usize][l].contains(&b)
                    {
                        self.link(a, b, l);
                    }
                }
            }
        }
        if self.entry == Some(node as u32) {
            // New entry: the live node of maximal level (smallest id on
            // ties) — deterministic, and always the top of the stack.
            self.entry = (0..self.layers.len())
                .filter(|&d| self.live[d])
                .max_by_key(|&d| (self.layers[d].len(), usize::MAX - d))
                .map(|d| d as u32);
        }
        Ok(())
    }

    /// The `k` (approximate) nearest live nodes to `query`, searched
    /// with beam width `ef` (clamped to at least `k`). Returns
    /// `(node, distance)` sorted by ascending distance, ties by id.
    ///
    /// # Errors
    ///
    /// Returns a dimension mismatch when `query` does not match the
    /// graph's space.
    pub fn knn(
        &self,
        query: &SparseVec,
        k: usize,
        ef: usize,
    ) -> Result<Vec<(DocId, f64)>, IrError> {
        if query.dim() != self.dim() {
            return Err(IrError::DimensionMismatch {
                left: self.dim(),
                right: query.dim(),
            });
        }
        Ok(self
            .search(query.terms(), query.values(), ef.max(k).max(1), None)
            .into_iter()
            .take(k)
            .map(|c| (c.node as DocId, c.dist))
            .collect())
    }

    /// The `k` (approximate) nearest live nodes to stored node `node`,
    /// excluding the node itself — the k-NN-list primitive the
    /// shared-nearest-neighbour clustering path consumes.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DocNotLive`] when `node` is not live.
    pub fn knn_of(&self, node: DocId, k: usize, ef: usize) -> Result<Vec<(DocId, f64)>, IrError> {
        if !self.is_live(node) {
            return Err(IrError::DocNotLive(node));
        }
        let (terms, values) = self.rows.row(node);
        Ok(self
            .search(
                terms,
                values,
                ef.max(k.saturating_add(1)).max(2),
                Some(node as u32),
            )
            .into_iter()
            .take(k)
            .map(|c| (c.node as DocId, c.dist))
            .collect())
    }

    /// The full HNSW query: an `ef`-beam descent from the entry point's
    /// top layer down to layer 0, each layer's beam seeding the next.
    /// (Classic HNSW descends greedily with a width-1 beam; the full
    /// width costs little on the geometrically small upper layers and
    /// is far more robust between well-separated clusters — see the
    /// matching comment in [`insert`](Self::insert).)
    fn search(
        &self,
        q_terms: &[TermId],
        q_values: &[f64],
        ef: usize,
        exclude: Option<u32>,
    ) -> Vec<Cand> {
        let Some((start, top)) = self.start_node(exclude) else {
            return Vec::new();
        };
        let mut entries = vec![start];
        for l in (1..=top).rev() {
            entries = self
                .search_layer(q_terms, q_values, ef, exclude, &entries, l)
                .into_iter()
                .map(|c| c.node)
                .collect();
        }
        self.search_layer(q_terms, q_values, ef, exclude, &entries, 0)
    }

    /// The search entry: the stored entry pointer when usable, else the
    /// live non-excluded node of maximal level. Returns `(node, its top
    /// layer)`, or `None` when no eligible node exists.
    fn start_node(&self, exclude: Option<u32>) -> Option<(u32, usize)> {
        if let Some(e) = self.entry {
            if Some(e) != exclude && self.live[e as usize] {
                return Some((e, self.layers[e as usize].len() - 1));
            }
        }
        (0..self.layers.len())
            .filter(|&d| self.live[d] && Some(d as u32) != exclude)
            .max_by_key(|&d| (self.layers[d].len(), usize::MAX - d))
            .map(|d| (d as u32, self.layers[d].len() - 1))
    }

    /// Best-first beam search within one layer: the classic HNSW layer
    /// search, seeded from `starts` (live, on `layer`, not excluded,
    /// non-empty). Returns up to `ef` live candidates sorted by
    /// ascending `(distance, id)`; `exclude` (the node being inserted,
    /// or the query node itself) never appears.
    fn search_layer(
        &self,
        q_terms: &[TermId],
        q_values: &[f64],
        ef: usize,
        exclude: Option<u32>,
        starts: &[u32],
        layer: usize,
    ) -> Vec<Cand> {
        let mut visited = vec![false; self.layers.len()];
        if let Some(x) = exclude {
            visited[x as usize] = true;
        }
        // `frontier` is a min-heap of nodes to expand; `best` a max-heap
        // of the `ef` closest results so far.
        let mut frontier: BinaryHeap<std::cmp::Reverse<Cand>> = BinaryHeap::new();
        let mut best: BinaryHeap<Cand> = BinaryHeap::new();
        for &start in starts {
            if visited[start as usize] {
                continue;
            }
            visited[start as usize] = true;
            let d0 = self.dist_to(q_terms, q_values, start as usize);
            frontier.push(std::cmp::Reverse(Cand {
                dist: d0,
                node: start,
            }));
            best.push(Cand {
                dist: d0,
                node: start,
            });
            if best.len() > ef {
                best.pop();
            }
        }
        while let Some(std::cmp::Reverse(cand)) = frontier.pop() {
            let worst = best.peek().expect("best is never empty here").dist;
            if best.len() >= ef && cand.dist > worst {
                break;
            }
            for &nb in &self.layers[cand.node as usize][layer] {
                if visited[nb as usize] {
                    continue;
                }
                visited[nb as usize] = true;
                let d = self.dist_to(q_terms, q_values, nb as usize);
                let worst = best.peek().expect("best is never empty here").dist;
                if best.len() < ef || d < worst {
                    frontier.push(std::cmp::Reverse(Cand { dist: d, node: nb }));
                    best.push(Cand { dist: d, node: nb });
                    if best.len() > ef {
                        best.pop();
                    }
                }
            }
        }
        let mut out = best.into_vec();
        out.sort_unstable();
        out
    }

    /// Distance from query slices to a stored row via the fused
    /// merge-join kernels (dimensions already validated).
    fn dist_to(&self, q_terms: &[TermId], q_values: &[f64], node: usize) -> f64 {
        let (terms, values) = self.rows.row(node);
        self.metric
            .distance_slices_unchecked(q_terms, q_values, terms, values)
    }

    /// Adds the undirected edge `(a, b)` on `layer`, pruning either
    /// endpoint back to `max_degree` when it overflows.
    fn link(&mut self, a: u32, b: u32, layer: usize) {
        debug_assert_ne!(a, b);
        for (x, y) in [(a, b), (b, a)] {
            if !self.layers[x as usize][layer].contains(&y) {
                self.layers[x as usize][layer].push(y);
                if self.layers[x as usize][layer].len() > self.max_degree {
                    self.prune(x, layer);
                }
            }
        }
    }

    /// Prunes `x` back to `max_degree` neighbours on `layer` with the
    /// diversity heuristic, dropping the reverse edges of everything
    /// pruned away.
    ///
    /// No fill here: an over-degree node keeps *only* its diverse
    /// edges. Topping back up with the closest skipped candidates would
    /// deterministically evict every long-range edge once a tight
    /// cluster outgrows the degree bound, fragmenting the layer into
    /// unreachable islands.
    fn prune(&mut self, x: u32, layer: usize) {
        let (x_terms, x_values) = self.rows.row(x as usize);
        let mut ranked: Vec<Cand> = self.layers[x as usize][layer]
            .iter()
            .map(|&nb| Cand {
                dist: self.metric.distance_slices_unchecked(
                    x_terms,
                    x_values,
                    self.rows.row(nb as usize).0,
                    self.rows.row(nb as usize).1,
                ),
                node: nb,
            })
            .collect();
        ranked.sort_unstable();
        let mut kept = self.select_diverse(&ranked, self.max_degree, false);
        // Degree floor: never drop an edge that is the other endpoint's
        // last one on this layer — that would strand the neighbour in a
        // place no beam search can reach. When the list is full, the
        // stranded neighbour displaces the farthest unprotected pick.
        for c in &ranked {
            if kept.contains(&c.node) || self.layers[c.node as usize][layer].len() > 1 {
                continue;
            }
            if kept.len() < self.max_degree {
                kept.push(c.node);
            } else if let Some(victim) = kept
                .iter()
                .rposition(|&n| self.layers[n as usize][layer].len() > 1)
            {
                let evicted = kept[victim];
                self.layers[evicted as usize][layer].retain(|&n| n != x);
                kept[victim] = c.node;
            }
        }
        for c in &ranked {
            if !kept.contains(&c.node) {
                self.layers[c.node as usize][layer].retain(|&n| n != x);
            }
        }
        self.layers[x as usize][layer] = kept;
    }

    /// The HNSW neighbour-selection heuristic over `ranked` candidates
    /// (ascending by distance to the pivot): keep a candidate only when
    /// it is closer to the pivot than to every neighbour already kept.
    ///
    /// Closest-only selection fragments clustered data — once a tight
    /// cluster exceeds `max_degree` every edge is intra-cluster, the
    /// bridges between clusters get pruned away, and a beam search can
    /// no longer navigate between them. Requiring each kept edge to
    /// cover a *direction* no earlier edge covers retains exactly those
    /// long-range links.
    ///
    /// With `fill` (insert-time selection, HNSW's
    /// `keepPrunedConnections`) remaining capacity is topped up with the
    /// closest skipped candidates so a fresh node starts well connected.
    /// Hard pruning passes must NOT fill — see [`prune`](Self::prune).
    fn select_diverse(&self, ranked: &[Cand], m: usize, fill: bool) -> Vec<u32> {
        let mut kept: Vec<Cand> = Vec::with_capacity(m);
        let mut skipped: Vec<Cand> = Vec::new();
        for &c in ranked {
            if kept.len() >= m {
                break;
            }
            let (c_terms, c_values) = self.rows.row(c.node as usize);
            let diverse = kept.iter().all(|s| {
                let (s_terms, s_values) = self.rows.row(s.node as usize);
                c.dist
                    < self
                        .metric
                        .distance_slices_unchecked(c_terms, c_values, s_terms, s_values)
            });
            if diverse {
                kept.push(c);
            } else {
                skipped.push(c);
            }
        }
        let mut out: Vec<u32> = kept.into_iter().map(|c| c.node).collect();
        if fill {
            for c in skipped {
                if out.len() >= m {
                    break;
                }
                out.push(c.node);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(dim: usize, term: u32) -> SparseVec {
        SparseVec::from_pairs(dim, [(term, 1.0)]).unwrap()
    }

    fn line_points(n: usize, dim: usize) -> Vec<SparseVec> {
        // Points along a 2-term segment: distinct, ordered distances.
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                SparseVec::from_pairs(dim, [(0, 1.0 - t), (1, t)]).unwrap()
            })
            .collect()
    }

    #[test]
    fn empty_graph_answers_empty() {
        let graph = AnnGraph::new(4);
        assert!(graph.is_empty());
        assert_eq!(graph.knn(&unit(4, 0), 3, 16).unwrap(), vec![]);
    }

    #[test]
    fn knn_dimension_mismatch_is_rejected() {
        let mut graph = AnnGraph::new(4);
        graph.insert(&unit(4, 0)).unwrap();
        assert!(matches!(
            graph.knn(&unit(8, 0), 1, 4),
            Err(IrError::DimensionMismatch { left: 4, right: 8 })
        ));
    }

    #[test]
    fn levels_are_deterministic_and_geometric() {
        // Same id, same level — always.
        for id in 0..64 {
            assert_eq!(level_of(id), level_of(id));
        }
        // Roughly one slot in 4 reaches layer 1 (binomial around 250).
        let l1 = (0..1000).filter(|&i| level_of(i) >= 1).count();
        assert!((200..300).contains(&l1), "layer-1 fraction off: {l1}/1000");
        // And the level must NOT be a simple periodic function of the
        // id: over round-robin residues every class needs upper-layer
        // representation (the aliasing failure the hash prevents).
        for class in 0..50 {
            let reached = (0..1000)
                .filter(|&i| i % 50 == class && level_of(i) >= 1)
                .count();
            assert!(reached > 0, "class {class} starved of upper layers");
        }
    }

    #[test]
    fn exact_on_small_graphs() {
        let pts = line_points(20, 4);
        let graph = AnnGraph::build(4, &pts).unwrap();
        // With n << ef the beam search visits everything: exact answers.
        let hits = graph.knn(&pts[7], 3, 64).unwrap();
        assert_eq!(hits[0].0, 7);
        assert!(hits[0].1.abs() < 1e-12);
        let ids: Vec<usize> = hits.iter().map(|h| h.0).collect();
        assert!(ids.contains(&6) || ids.contains(&8));
    }

    #[test]
    fn knn_of_excludes_self() {
        let pts = line_points(10, 4);
        let graph = AnnGraph::build(4, &pts).unwrap();
        let hits = graph.knn_of(4, 3, 64).unwrap();
        assert!(hits.iter().all(|h| h.0 != 4));
        assert!(hits.iter().any(|h| h.0 == 3 || h.0 == 5));
    }

    #[test]
    fn removal_detaches_and_relinks() {
        let pts = line_points(12, 4);
        let mut graph = AnnGraph::build(4, &pts).unwrap();
        graph.remove(5).unwrap();
        assert!(!graph.is_live(5));
        assert_eq!(graph.len(), 11);
        assert!(graph.neighbors(5).is_empty());
        for d in 0..graph.num_slots() {
            assert!(!graph.neighbors(d).contains(&5));
        }
        // Dead nodes never surface in results.
        let hits = graph.knn(&pts[5], 12, 64).unwrap();
        assert!(hits.iter().all(|h| h.0 != 5));
        assert!(matches!(graph.remove(5), Err(IrError::DocNotLive(5))));
    }

    #[test]
    fn edges_stay_symmetric_and_degree_bounded() {
        let pts = line_points(60, 4);
        let mut graph = AnnGraph::new(4).max_degree(4);
        for p in &pts {
            graph.insert(p).unwrap();
        }
        for d in [3usize, 17, 40] {
            graph.remove(d).unwrap();
        }
        for a in 0..graph.num_slots() {
            assert!(graph.neighbors(a).len() <= 4);
            for &b in graph.neighbors(a) {
                assert!(graph.is_live(a) && graph.is_live(b as usize));
                assert!(graph.neighbors(b as usize).contains(&(a as u32)));
            }
        }
    }

    #[test]
    fn upper_layers_stay_consistent_too() {
        let pts = line_points(80, 4);
        let mut graph = AnnGraph::new(4).max_degree(4);
        for p in &pts {
            graph.insert(p).unwrap();
        }
        for d in [3usize, 15, 19, 40] {
            graph.remove(d).unwrap();
        }
        for a in 0..graph.num_slots() {
            for (l, nbrs) in graph.layers[a].iter().enumerate() {
                assert!(nbrs.len() <= 4, "layer {l} degree bound at {a}");
                if !graph.is_live(a) {
                    assert!(nbrs.is_empty());
                    continue;
                }
                for &b in nbrs {
                    assert!(graph.is_live(b as usize), "dead neighbour on layer {l}");
                    assert!(
                        graph.layers[b as usize][l].contains(&(a as u32)),
                        "asymmetric layer-{l} edge {a}->{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn entry_point_survives_removal() {
        let pts = line_points(8, 4);
        let mut graph = AnnGraph::build(4, &pts).unwrap();
        // The entry is the highest-level node; removing it must repair
        // the pointer and keep searches working.
        let top = (0..8).max_by_key(|&d| graph.num_layers_of(d)).unwrap();
        graph.remove(top).unwrap();
        let probe = if top == 1 { 2 } else { 1 };
        let hits = graph.knn(&pts[probe], 3, 32).unwrap();
        assert_eq!(hits[0].0, probe);
    }

    #[test]
    fn remove_everything_then_reinsert() {
        let pts = line_points(6, 4);
        let mut graph = AnnGraph::build(4, &pts).unwrap();
        for d in 0..6 {
            graph.remove(d).unwrap();
        }
        assert!(graph.is_empty());
        assert_eq!(graph.knn(&pts[0], 2, 8).unwrap(), vec![]);
        let id = graph.insert(&pts[2]).unwrap();
        assert_eq!(id, 6, "slots are never reused");
        assert_eq!(graph.knn(&pts[2], 1, 8).unwrap()[0].0, 6);
    }
}
