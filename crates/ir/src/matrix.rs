//! Contiguous CSR (compressed sparse row) storage for a corpus of
//! signature vectors.
//!
//! Clustering and search iterate over *all* pairs of signatures; keeping
//! every row in one packed `(indices, values)` buffer removes the
//! per-vector pointer chase and lets the pairwise kernels run
//! allocation-free over slices. L2 norms and squared norms are cached per
//! row at construction so cosine similarity and the K-means norm trick
//! never recompute them.

use serde::{Deserialize, Serialize, Value};

use crate::codec;

use crate::distance::{cosine_similarity_with_norms, sq_norm};
use crate::{IrError, Metric, SparseVec, TermId};

/// Minimum number of pairwise distances before
/// [`CsrMatrix::pairwise_condensed`] fans out across threads; below this
/// the spawn overhead dominates.
const PARALLEL_PAIR_THRESHOLD: usize = 4096;

/// A corpus of sparse vectors packed into one CSR buffer.
///
/// Row `i` occupies `indices[indptr[i]..indptr[i + 1]]` (sorted term ids)
/// and the parallel `values` range. Construction caches each row's L2
/// norm and squared norm.
///
/// # Examples
///
/// ```
/// use fmeter_ir::{CsrMatrix, Metric, SparseVec};
///
/// let rows = vec![
///     SparseVec::from_pairs(4, [(0, 3.0)]).unwrap(),
///     SparseVec::from_pairs(4, [(1, 4.0)]).unwrap(),
/// ];
/// let m = CsrMatrix::from_rows(&rows).unwrap();
/// assert_eq!(m.len(), 2);
/// assert_eq!(m.nnz(), 2);
/// let d = m.pairwise_condensed(Metric::Euclidean).unwrap();
/// assert!((d[0] - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CsrMatrix {
    dim: usize,
    indptr: Vec<usize>,
    indices: Vec<TermId>,
    values: Vec<f64>,
    norms: Vec<f64>,
    sq_norms: Vec<f64>,
}

// Serde surface for packed corpora (nothing in the SignatureDb envelope
// embeds a CsrMatrix today — this is for callers persisting their own
// matrix artifacts). Implemented by hand so (a) the cached norms stay
// out of the serialized layout (they are derived data, recomputed on
// load) and (b) deserialization routes through `from_raw_parts`, whose
// invariant checks turn a corrupted or hand-edited payload into an
// error instead of a kernel that indexes out of bounds.
impl Serialize for CsrMatrix {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("dim".to_string(), self.dim.to_value()),
            ("indptr".to_string(), self.indptr.to_value()),
            ("indices".to_string(), self.indices.to_value()),
            ("values".to_string(), self.values.to_value()),
        ])
    }
}

impl Deserialize for CsrMatrix {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let dim = usize::from_value(v.get_field("dim")?)?;
        let indptr = Vec::from_value(v.get_field("indptr")?)?;
        let indices = Vec::from_value(v.get_field("indices")?)?;
        let values = Vec::from_value(v.get_field("values")?)?;
        CsrMatrix::from_raw_parts(dim, indptr, indices, values)
            .map_err(|e| serde::Error(format!("invalid CsrMatrix: {e}")))
    }
}

impl CsrMatrix {
    /// An empty matrix over a fixed `dim`-dimensional space, grown one
    /// row at a time with [`push_row`](Self::push_row) — the streaming
    /// counterpart of [`from_rows`](Self::from_rows).
    pub fn new(dim: usize) -> Self {
        CsrMatrix {
            dim,
            indptr: vec![0],
            indices: Vec::new(),
            values: Vec::new(),
            norms: Vec::new(),
            sq_norms: Vec::new(),
        }
    }

    /// Packs a slice of sparse vectors into one CSR buffer.
    ///
    /// An empty slice yields an empty matrix of dimension zero.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimensionMismatch`] when the rows disagree on
    /// dimensionality.
    pub fn from_rows(rows: &[SparseVec]) -> Result<Self, IrError> {
        let dim = rows.first().map_or(0, SparseVec::dim);
        let total_nnz: usize = rows.iter().map(SparseVec::nnz).sum();
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        let mut indices = Vec::with_capacity(total_nnz);
        let mut values = Vec::with_capacity(total_nnz);
        let mut norms = Vec::with_capacity(rows.len());
        let mut sq_norms = Vec::with_capacity(rows.len());
        indptr.push(0);
        for row in rows {
            if row.dim() != dim {
                return Err(IrError::DimensionMismatch {
                    left: dim,
                    right: row.dim(),
                });
            }
            indices.extend_from_slice(row.terms());
            values.extend_from_slice(row.values());
            indptr.push(indices.len());
            let sq = sq_norm(row.values());
            sq_norms.push(sq);
            norms.push(sq.sqrt());
        }
        Ok(CsrMatrix {
            dim,
            indptr,
            indices,
            values,
            norms,
            sq_norms,
        })
    }

    /// Builds a matrix from raw CSR parts (e.g. assembled directly by
    /// [`TfIdfModel::transform_corpus_csr`](crate::TfIdfModel::transform_corpus_csr)
    /// without intermediate [`SparseVec`]s). Norms are computed here.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::TermOutOfRange`] when an index is `>= dim` and
    /// [`IrError::DimensionMismatch`] when the parts are inconsistent
    /// (`indptr` not monotone from 0 to `indices.len()`, `indices` and
    /// `values` lengths differ, or a row's terms are not strictly
    /// increasing).
    pub fn from_raw_parts(
        dim: usize,
        indptr: Vec<usize>,
        indices: Vec<TermId>,
        values: Vec<f64>,
    ) -> Result<Self, IrError> {
        let shape_err = IrError::DimensionMismatch {
            left: indices.len(),
            right: values.len(),
        };
        if indices.len() != values.len() {
            return Err(shape_err);
        }
        if indptr.first() != Some(&0) || indptr.last() != Some(&indices.len()) {
            return Err(shape_err);
        }
        for w in indptr.windows(2) {
            // Bound-check before slicing: a non-monotone indptr whose
            // middle value overshoots indices.len() must error, not panic.
            if w[0] > w[1] || w[1] > indices.len() {
                return Err(shape_err);
            }
            let row = &indices[w[0]..w[1]];
            for pair in row.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(shape_err);
                }
            }
            if let Some(&t) = row.last() {
                if t as usize >= dim {
                    return Err(IrError::TermOutOfRange { term: t, dim });
                }
            }
        }
        let rows = indptr.len() - 1;
        let mut norms = Vec::with_capacity(rows);
        let mut sq_norms = Vec::with_capacity(rows);
        for w in indptr.windows(2) {
            let sq = sq_norm(&values[w[0]..w[1]]);
            sq_norms.push(sq);
            norms.push(sq.sqrt());
        }
        Ok(CsrMatrix {
            dim,
            indptr,
            indices,
            values,
            norms,
            sq_norms,
        })
    }

    /// Internal constructor for callers that guarantee the CSR invariants
    /// by construction (sorted in-range rows, consistent `indptr`); only
    /// norms are computed. Debug builds still verify.
    pub(crate) fn from_parts_trusted(
        dim: usize,
        indptr: Vec<usize>,
        indices: Vec<TermId>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert!(
            CsrMatrix::from_raw_parts(dim, indptr.clone(), indices.clone(), values.clone()).is_ok(),
            "trusted CSR parts violate the layout invariants"
        );
        let rows = indptr.len().saturating_sub(1);
        let mut norms = Vec::with_capacity(rows);
        let mut sq_norms = Vec::with_capacity(rows);
        for w in indptr.windows(2) {
            let sq = sq_norm(&values[w[0]..w[1]]);
            sq_norms.push(sq);
            norms.push(sq.sqrt());
        }
        CsrMatrix {
            dim,
            indptr,
            indices,
            values,
            norms,
            sq_norms,
        }
    }

    /// Appends one row to the matrix, returning its row index — the
    /// streaming-ingest path: a daemon can keep a packed corpus matrix
    /// current as signatures arrive, instead of re-packing all rows
    /// before every re-clustering pass. Norms are cached exactly as the
    /// batch constructors do.
    ///
    /// An empty matrix (dimension zero, no rows) adopts the first pushed
    /// row's dimension.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimensionMismatch`] when the row's dimension
    /// differs from the matrix's.
    pub fn push_row(&mut self, row: &SparseVec) -> Result<usize, IrError> {
        if self.is_empty() && self.nnz() == 0 && self.dim == 0 {
            self.dim = row.dim();
            if self.indptr.is_empty() {
                self.indptr.push(0);
            }
        }
        if row.dim() != self.dim {
            return Err(IrError::DimensionMismatch {
                left: self.dim,
                right: row.dim(),
            });
        }
        self.indices.extend_from_slice(row.terms());
        self.values.extend_from_slice(row.values());
        self.indptr.push(self.indices.len());
        let sq = sq_norm(row.values());
        self.sq_norms.push(sq);
        self.norms.push(sq.sqrt());
        Ok(self.len() - 1)
    }

    /// Number of rows (documents).
    pub fn len(&self) -> usize {
        self.indptr.len().saturating_sub(1)
    }

    /// Returns `true` when the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of the vector space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Row `i` as `(terms, values)` slices, sorted by term id.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn row(&self, i: usize) -> (&[TermId], &[f64]) {
        let (lo, hi) = (self.indptr[i], self.indptr[i + 1]);
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Cached L2 norm of row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn norm(&self, i: usize) -> f64 {
        self.norms[i]
    }

    /// Cached squared L2 norm of row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn sq_norm(&self, i: usize) -> f64 {
        self.sq_norms[i]
    }

    /// Copies row `i` back out as a standalone [`SparseVec`].
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn row_to_sparse(&self, i: usize) -> SparseVec {
        let (terms, values) = self.row(i);
        SparseVec::from_pairs(self.dim, terms.iter().copied().zip(values.iter().copied()))
            .expect("CSR terms are in range")
    }

    /// Distance between rows `i` and `j` under `metric`, allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidOrder`] for a Minkowski order `p < 1`.
    ///
    /// # Panics
    ///
    /// Panics when `i` or `j` is out of range.
    pub fn row_distance(&self, i: usize, j: usize, metric: Metric) -> Result<f64, IrError> {
        metric.validate()?;
        Ok(self.row_distance_unchecked(i, j, metric))
    }

    #[inline]
    fn row_distance_unchecked(&self, i: usize, j: usize, metric: Metric) -> f64 {
        let (at, av) = self.row(i);
        let (bt, bv) = self.row(j);
        match metric {
            // Cosine reuses the cached norms instead of re-deriving them.
            Metric::Cosine => {
                1.0 - cosine_similarity_with_norms(at, av, bt, bv, self.norms[i], self.norms[j])
            }
            _ => metric.distance_slices_unchecked(at, av, bt, bv),
        }
    }

    /// Computes all pairwise distances into a condensed upper-triangular
    /// vector of length `n * (n - 1) / 2`: the distance between rows
    /// `i < j` lands at `i * (2n - i - 1) / 2 + (j - i - 1)` (scipy's
    /// `pdist` layout).
    ///
    /// Large inputs are fanned out across threads with
    /// [`std::thread::scope`]; every pair is computed independently, so
    /// the result is identical regardless of thread count.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidOrder`] for a Minkowski order `p < 1`.
    pub fn pairwise_condensed(&self, metric: Metric) -> Result<Vec<f64>, IrError> {
        let mut out = Vec::new();
        self.pairwise_condensed_into(metric, &mut out)?;
        Ok(out)
    }

    /// Like [`pairwise_condensed`](Self::pairwise_condensed) but reuses
    /// `out`'s allocation across calls.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidOrder`] for a Minkowski order `p < 1`.
    pub fn pairwise_condensed_into(
        &self,
        metric: Metric,
        out: &mut Vec<f64>,
    ) -> Result<(), IrError> {
        metric.validate()?;
        let n = self.len();
        let pairs = n * n.saturating_sub(1) / 2;
        out.clear();
        out.resize(pairs, 0.0);
        if pairs == 0 {
            return Ok(());
        }
        let threads = if pairs >= PARALLEL_PAIR_THRESHOLD {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(n - 1)
        } else {
            1
        };
        // Dot-product metrics take the scatter/gather row kernel: row i
        // is scattered into a dense scratch once, then every d(i, j)
        // gathers over row j's support only — half the memory touches of
        // a merge join and none of its data-dependent branches.
        let gather = matches!(metric, Metric::Euclidean | Metric::Cosine);
        if threads <= 1 {
            if gather {
                let mut dense = vec![0.0f64; self.dim];
                let mut idx = 0;
                for i in 0..n - 1 {
                    self.scatter_row(i, &mut dense);
                    for j in i + 1..n {
                        out[idx] = self.row_distance_gather(i, j, metric, &dense);
                        idx += 1;
                    }
                    self.unscatter_row(i, &mut dense);
                }
            } else {
                let mut idx = 0;
                for i in 0..n - 1 {
                    for j in i + 1..n {
                        out[idx] = self.row_distance_unchecked(i, j, metric);
                        idx += 1;
                    }
                }
            }
            return Ok(());
        }
        // Chop the condensed buffer into per-row slices (row i owns the
        // n-1-i distances to rows i+1..n) and deal rows round-robin so
        // every thread gets a mix of long (early) and short (late) rows.
        let mut row_slices: Vec<(usize, &mut [f64])> = Vec::with_capacity(n - 1);
        let mut rest = out.as_mut_slice();
        for i in 0..n - 1 {
            let (head, tail) = rest.split_at_mut(n - 1 - i);
            row_slices.push((i, head));
            rest = tail;
        }
        let mut buckets: Vec<Vec<(usize, &mut [f64])>> = (0..threads).map(|_| Vec::new()).collect();
        for (k, item) in row_slices.into_iter().enumerate() {
            buckets[k % threads].push(item);
        }
        std::thread::scope(|s| {
            for bucket in buckets {
                s.spawn(move || {
                    // Per-thread dense scratch; every row is owned by
                    // exactly one bucket, so each row scatters once.
                    let mut dense = if gather {
                        vec![0.0f64; self.dim]
                    } else {
                        Vec::new()
                    };
                    for (i, row_out) in bucket {
                        if gather {
                            self.scatter_row(i, &mut dense);
                            for (off, slot) in row_out.iter_mut().enumerate() {
                                *slot = self.row_distance_gather(i, i + 1 + off, metric, &dense);
                            }
                            self.unscatter_row(i, &mut dense);
                        } else {
                            for (off, slot) in row_out.iter_mut().enumerate() {
                                *slot = self.row_distance_unchecked(i, i + 1 + off, metric);
                            }
                        }
                    }
                });
            }
        });
        Ok(())
    }

    /// Writes row `i`'s values into the dense scratch (support only).
    fn scatter_row(&self, i: usize, dense: &mut [f64]) {
        let (terms, values) = self.row(i);
        for (&t, &v) in terms.iter().zip(values) {
            dense[t as usize] = v;
        }
    }

    /// Zeroes row `i`'s support in the dense scratch (O(nnz), not O(dim)).
    fn unscatter_row(&self, i: usize, dense: &mut [f64]) {
        let (terms, _) = self.row(i);
        for &t in terms {
            dense[t as usize] = 0.0;
        }
    }

    /// Distance between scattered row `i` and row `j` for the dot-product
    /// metrics, gathering over `j`'s support only.
    ///
    /// Euclidean accumulates `(vj - xi_t)²` over `j`'s terms plus the
    /// squared mass of `i`'s terms outside `j` as `sq_i - Σ shared xi²`;
    /// for identical rows both corrections cancel exactly (the shared sum
    /// replays `sq_norm`'s own addition order), so duplicates keep their
    /// precise 0.0 distance. Results can differ from the merge-join
    /// kernel in the last bits (different accumulation grouping), which
    /// is why the tests compare the two at 1e-12 rather than bitwise.
    #[inline]
    fn row_distance_gather(&self, i: usize, j: usize, metric: Metric, dense: &[f64]) -> f64 {
        let (terms, values) = self.row(j);
        match metric {
            Metric::Euclidean => {
                let mut acc = 0.0f64;
                let mut shared_sq = 0.0f64;
                for (&t, &v) in terms.iter().zip(values) {
                    let c = dense[t as usize];
                    let diff = v - c;
                    acc += diff * diff;
                    shared_sq += c * c;
                }
                (acc + (self.sq_norms[i] - shared_sq)).max(0.0).sqrt()
            }
            Metric::Cosine => {
                let denom = self.norms[i] * self.norms[j];
                if denom == 0.0 {
                    return 1.0;
                }
                let mut dot = 0.0f64;
                for (&t, &v) in terms.iter().zip(values) {
                    dot += v * dense[t as usize];
                }
                1.0 - (dot / denom).clamp(-1.0, 1.0)
            }
            _ => unreachable!("gather path is Euclidean/Cosine only"),
        }
    }

    /// Index of the pair `(i, j)`, `i < j`, in the condensed layout of
    /// [`pairwise_condensed`](Self::pairwise_condensed).
    ///
    /// # Panics
    ///
    /// Panics when `i >= j` or `j >= len()`.
    pub fn condensed_index(&self, i: usize, j: usize) -> usize {
        let n = self.len();
        assert!(i < j && j < n, "condensed index requires i < j < n");
        i * (2 * n - i - 1) / 2 + (j - i - 1)
    }
}

// Binary wire layout (see `crate::codec`): the same four fields the JSON
// surface persists — the cached norms stay off the wire — and decoding
// routes through `from_raw_parts` so its invariant checks run on the binary
// path too.
impl codec::BinCodec for CsrMatrix {
    fn encode_bin(&self, out: &mut Vec<u8>) {
        codec::put_usize(out, self.dim);
        codec::put_usizes(out, &self.indptr);
        codec::put_u32s(out, &self.indices);
        codec::put_f64s(out, &self.values);
    }

    fn decode_bin(r: &mut codec::Reader<'_>) -> Result<Self, codec::CodecError> {
        let dim = r.get_usize()?;
        let indptr = r.get_usizes()?;
        let indices = r.get_u32s()?;
        let values = r.get_f64s()?;
        CsrMatrix::from_raw_parts(dim, indptr, indices, values)
            .map_err(|e| codec::CodecError::new(format!("invalid CsrMatrix: {e}")))
    }
}

#[cfg(test)]
mod tests {
    mod serde_surface {
        use crate::{CsrMatrix, SparseVec};

        #[test]
        fn round_trips_and_recomputes_norms() {
            let rows = vec![
                SparseVec::from_pairs(6, [(0, 3.0), (4, 4.0)]).unwrap(),
                SparseVec::zeros(6),
                SparseVec::from_pairs(6, [(2, -1.5)]).unwrap(),
            ];
            let m = CsrMatrix::from_rows(&rows).unwrap();
            let json = serde_json::to_string(&m).unwrap();
            // Derived data (norms) stays out of the persisted layout.
            assert!(!json.contains("norms"));
            let restored: CsrMatrix = serde_json::from_str(&json).unwrap();
            assert_eq!(restored, m);
            assert!((restored.norm(0) - 5.0).abs() < 1e-12);
            assert_eq!(restored.norm(1), 0.0);
        }

        #[test]
        fn rejects_corrupted_layout() {
            // indptr not monotone / out of bounds must error, not panic.
            for bad in [
                r#"{"dim":4,"indptr":[0,5],"indices":[1],"values":[1.0]}"#,
                r#"{"dim":4,"indptr":[0,1],"indices":[9],"values":[1.0]}"#,
                r#"{"dim":4,"indptr":[0,2],"indices":[2,1],"values":[1.0,2.0]}"#,
                r#"{"dim":4,"indptr":[0,1],"indices":[1,2],"values":[1.0]}"#,
            ] {
                assert!(
                    serde_json::from_str::<CsrMatrix>(bad).is_err(),
                    "accepted corrupt matrix {bad}"
                );
            }
        }
    }

    use super::*;
    use crate::euclidean_distance;

    fn rows() -> Vec<SparseVec> {
        vec![
            SparseVec::from_pairs(8, [(0, 1.0), (3, 2.0)]).unwrap(),
            SparseVec::from_pairs(8, [(3, -1.0), (5, 4.0)]).unwrap(),
            SparseVec::zeros(8),
            SparseVec::from_pairs(8, [(0, 1.0), (3, 2.0)]).unwrap(),
        ]
    }

    #[test]
    fn from_rows_packs_and_caches_norms() {
        let rs = rows();
        let m = CsrMatrix::from_rows(&rs).unwrap();
        assert_eq!(m.len(), 4);
        assert_eq!(m.dim(), 8);
        assert_eq!(m.nnz(), 6);
        assert!(!m.is_empty());
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(m.row_to_sparse(i), *r);
            assert!((m.norm(i) - r.norm_l2()).abs() < 1e-15);
            assert!((m.sq_norm(i) - r.norm_l2() * r.norm_l2()).abs() < 1e-12);
        }
    }

    #[test]
    fn push_row_matches_batch_construction() {
        let rs = rows();
        let batch = CsrMatrix::from_rows(&rs).unwrap();
        let mut incremental = CsrMatrix::from_rows(&rs[..2]).unwrap();
        assert_eq!(incremental.push_row(&rs[2]).unwrap(), 2);
        assert_eq!(incremental.push_row(&rs[3]).unwrap(), 3);
        assert_eq!(incremental, batch);
        // Growing from empty adopts the first row's dimension.
        let mut from_empty = CsrMatrix::from_rows(&[]).unwrap();
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(from_empty.push_row(r).unwrap(), i);
        }
        assert_eq!(from_empty, batch);
        let mut from_default = CsrMatrix::default();
        for r in &rs {
            from_default.push_row(r).unwrap();
        }
        assert_eq!(from_default, batch);
        // Dimension mismatches are rejected once the dimension is set.
        assert!(matches!(
            from_empty.push_row(&SparseVec::zeros(5)),
            Err(IrError::DimensionMismatch { left: 8, right: 5 })
        ));
    }

    #[test]
    fn from_rows_rejects_mixed_dims() {
        let rs = vec![SparseVec::zeros(4), SparseVec::zeros(5)];
        assert!(matches!(
            CsrMatrix::from_rows(&rs),
            Err(IrError::DimensionMismatch { left: 4, right: 5 })
        ));
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::from_rows(&[]).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.pairwise_condensed(Metric::Euclidean).unwrap(), vec![]);
    }

    #[test]
    fn pairwise_matches_pointwise_distances() {
        let rs = rows();
        let m = CsrMatrix::from_rows(&rs).unwrap();
        for metric in [
            Metric::Euclidean,
            Metric::Manhattan,
            Metric::Minkowski(3.0),
            Metric::Cosine,
        ] {
            let cond = m.pairwise_condensed(metric).unwrap();
            assert_eq!(cond.len(), 6);
            for i in 0..rs.len() {
                for j in i + 1..rs.len() {
                    let expected = metric.distance(&rs[i], &rs[j]).unwrap();
                    let got = cond[m.condensed_index(i, j)];
                    assert!(
                        (got - expected).abs() < 1e-12,
                        "{metric:?} ({i},{j}): {got} vs {expected}"
                    );
                    let direct = m.row_distance(i, j, metric).unwrap();
                    assert!((direct - expected).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn duplicate_rows_have_zero_distance() {
        let m = CsrMatrix::from_rows(&rows()).unwrap();
        let cond = m.pairwise_condensed(Metric::Euclidean).unwrap();
        assert_eq!(cond[m.condensed_index(0, 3)], 0.0);
    }

    #[test]
    fn parallel_path_agrees_with_serial() {
        // Enough rows that pairs >= PARALLEL_PAIR_THRESHOLD.
        let n = 128;
        let rs: Vec<SparseVec> = (0..n)
            .map(|i| {
                SparseVec::from_pairs(
                    64,
                    (0..8u32).map(|k| (((i as u32) * 7 + k * 5) % 64, (i + k as usize) as f64)),
                )
                .unwrap()
            })
            .collect();
        let m = CsrMatrix::from_rows(&rs).unwrap();
        let cond = m.pairwise_condensed(Metric::Euclidean).unwrap();
        assert!(n * (n - 1) / 2 >= PARALLEL_PAIR_THRESHOLD);
        for i in 0..n {
            for j in i + 1..n {
                // The batch kernel gathers over a dense scratch, so it can
                // differ from the merge-join pointwise kernel in the last
                // bits — but not beyond.
                let expected = euclidean_distance(&rs[i], &rs[j]).unwrap();
                let got = cond[m.condensed_index(i, j)];
                assert!(
                    (got - expected).abs() <= 1e-12 * (1.0 + expected),
                    "({i},{j}): {got} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn pairwise_into_reuses_buffer_and_rejects_bad_order() {
        let m = CsrMatrix::from_rows(&rows()).unwrap();
        let mut buf = vec![99.0; 2];
        m.pairwise_condensed_into(Metric::Manhattan, &mut buf)
            .unwrap();
        assert_eq!(buf.len(), 6);
        assert!(matches!(
            m.pairwise_condensed(Metric::Minkowski(0.5)),
            Err(IrError::InvalidOrder(_))
        ));
    }

    #[test]
    fn from_raw_parts_validates() {
        // Valid two-row matrix.
        let m = CsrMatrix::from_raw_parts(4, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0])
            .unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.row(0), (&[0u32, 2][..], &[1.0, 2.0][..]));
        // Length mismatch.
        assert!(CsrMatrix::from_raw_parts(4, vec![0, 1], vec![0], vec![]).is_err());
        // Non-monotone indptr.
        assert!(CsrMatrix::from_raw_parts(4, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        // Non-monotone indptr whose middle value overshoots indices.len()
        // (regression: used to panic on the row slice instead of erroring).
        assert!(
            CsrMatrix::from_raw_parts(4, vec![0, 5, 3], vec![0, 1, 2], vec![1.0, 1.0, 1.0])
                .is_err()
        );
        // Unsorted row.
        assert!(CsrMatrix::from_raw_parts(4, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).is_err());
        // Term out of range.
        assert!(matches!(
            CsrMatrix::from_raw_parts(2, vec![0, 1], vec![5], vec![1.0]),
            Err(IrError::TermOutOfRange { term: 5, dim: 2 })
        ));
    }

    #[test]
    #[should_panic(expected = "i < j < n")]
    fn condensed_index_rejects_bad_pair() {
        let m = CsrMatrix::from_rows(&rows()).unwrap();
        m.condensed_index(2, 2);
    }
}
