use std::error::Error;
use std::fmt;

/// Errors produced by the vector-space-model crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IrError {
    /// Two vectors (or a vector and a model) disagree on dimensionality.
    DimensionMismatch {
        /// Dimension of the left-hand operand (or the model).
        left: usize,
        /// Dimension of the right-hand operand (or the input).
        right: usize,
    },
    /// A term id is out of range for the declared dimension.
    TermOutOfRange {
        /// The offending term id.
        term: u32,
        /// The declared dimensionality.
        dim: usize,
    },
    /// An operation that requires a non-empty corpus was given an empty one.
    EmptyCorpus,
    /// A Minkowski order `p < 1` was requested (not a metric).
    InvalidOrder(f64),
    /// A document id does not name a live (inserted, not removed) document.
    DocNotLive(usize),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
            IrError::TermOutOfRange { term, dim } => {
                write!(f, "term id {term} out of range for dimension {dim}")
            }
            IrError::EmptyCorpus => write!(f, "corpus contains no documents"),
            IrError::InvalidOrder(p) => {
                write!(f, "minkowski order must satisfy p >= 1, got {p}")
            }
            IrError::DocNotLive(doc) => {
                write!(f, "document {doc} is not live in the index")
            }
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = IrError::DimensionMismatch { left: 3, right: 4 };
        assert_eq!(e.to_string(), "dimension mismatch: 3 vs 4");
        let e = IrError::TermOutOfRange { term: 9, dim: 4 };
        assert_eq!(e.to_string(), "term id 9 out of range for dimension 4");
        assert_eq!(
            IrError::EmptyCorpus.to_string(),
            "corpus contains no documents"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IrError>();
    }
}
