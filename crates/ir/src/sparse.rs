use std::fmt;

use serde::{Deserialize, Serialize};

use crate::codec;
use crate::{IrError, TermId};

/// A sparse vector in the signature vector space.
///
/// Stores `(term, value)` pairs sorted by term id, together with the
/// dimensionality of the space. Zero-valued entries are never stored, so two
/// vectors that compare equal have identical storage.
///
/// `SparseVec` is the concrete representation of the paper's weight vectors
/// `v_j = [w_1j, ..., w_Nj]`: the `N` distinct kernel functions induce the
/// orthonormal basis and each stored entry is one non-zero coordinate.
///
/// # Examples
///
/// ```
/// use fmeter_ir::SparseVec;
///
/// let v = SparseVec::from_pairs(8, [(1, 3.0), (5, 4.0)]).unwrap();
/// assert_eq!(v.nnz(), 2);
/// assert_eq!(v.norm_l2(), 5.0);
/// assert_eq!(v.get(5), 4.0);
/// assert_eq!(v.get(2), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SparseVec {
    dim: usize,
    terms: Vec<TermId>,
    values: Vec<f64>,
}

impl SparseVec {
    /// Creates an all-zero vector of the given dimensionality.
    pub fn zeros(dim: usize) -> Self {
        SparseVec {
            dim,
            terms: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a vector from `(term, value)` pairs.
    ///
    /// Pairs may arrive in any order; duplicate term ids are summed and
    /// resulting zero entries are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::TermOutOfRange`] if any term id is `>= dim`.
    pub fn from_pairs(
        dim: usize,
        pairs: impl IntoIterator<Item = (TermId, f64)>,
    ) -> Result<Self, IrError> {
        let mut entries: Vec<(TermId, f64)> = pairs.into_iter().collect();
        for &(t, _) in &entries {
            if t as usize >= dim {
                return Err(IrError::TermOutOfRange { term: t, dim });
            }
        }
        entries.sort_unstable_by_key(|&(t, _)| t);
        // Single pass: merge duplicate terms as they stream by and evict an
        // entry the moment its accumulated value is (or cancels to) zero.
        let mut terms: Vec<TermId> = Vec::with_capacity(entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(entries.len());
        for (t, v) in entries {
            if terms.last() == Some(&t) {
                let last = values.last_mut().expect("values tracks terms");
                *last += v;
                if *last == 0.0 {
                    terms.pop();
                    values.pop();
                }
            } else if v != 0.0 {
                terms.push(t);
                values.push(v);
            }
        }
        Ok(SparseVec { dim, terms, values })
    }

    /// Builds a vector from a dense slice, storing only non-zero entries.
    pub fn from_dense(dense: &[f64]) -> Self {
        let mut terms = Vec::new();
        let mut values = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v != 0.0 {
                terms.push(i as TermId);
                values.push(v);
            }
        }
        SparseVec {
            dim: dense.len(),
            terms,
            values,
        }
    }

    /// Dimensionality of the vector space this vector lives in.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if the vector has no non-zero entries.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Value of the coordinate for `term` (zero when not stored).
    pub fn get(&self, term: TermId) -> f64 {
        match self.terms.binary_search(&term) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates over the stored `(term, value)` pairs in increasing term order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, f64)> + '_ {
        self.terms.iter().copied().zip(self.values.iter().copied())
    }

    /// The stored term ids, in increasing order.
    ///
    /// Together with [`values`](Self::values) this exposes the raw sparse
    /// layout so allocation-free kernels (the fused distance loops, the
    /// [`CsrMatrix`](crate::CsrMatrix) batch kernels) can run directly over
    /// the slices.
    pub fn terms(&self) -> &[TermId] {
        &self.terms
    }

    /// The stored values, parallel to [`terms`](Self::terms).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Expands to a dense `Vec<f64>` of length [`dim`](Self::dim).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut dense = vec![0.0; self.dim];
        for (t, v) in self.iter() {
            dense[t as usize] = v;
        }
        dense
    }

    /// Dot product with another sparse vector.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimensionMismatch`] when the dimensions differ.
    pub fn dot(&self, other: &SparseVec) -> Result<f64, IrError> {
        self.check_dim(other)?;
        // Merge-join over the two sorted term lists.
        let mut acc = 0.0;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.terms.len() && j < other.terms.len() {
            match self.terms[i].cmp(&other.terms[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.values[i] * other.values[j];
                    i += 1;
                    j += 1;
                }
            }
        }
        Ok(acc)
    }

    /// Euclidean (L2) norm.
    pub fn norm_l2(&self) -> f64 {
        self.norm_l2_sq().sqrt()
    }

    /// Squared Euclidean norm `‖v‖²` (no sqrt — the K-means hot path
    /// consumes this directly in `‖x‖² − 2x·c + ‖c‖²`).
    pub fn norm_l2_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>()
    }

    /// L1 norm (sum of absolute values).
    pub fn norm_l1(&self) -> f64 {
        self.values.iter().map(|v| v.abs()).sum()
    }

    /// Lp norm for arbitrary order `p >= 1`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidOrder`] when `p < 1` or `p` is NaN.
    pub fn norm_lp(&self, p: f64) -> Result<f64, IrError> {
        if p < 1.0 || p.is_nan() {
            return Err(IrError::InvalidOrder(p));
        }
        Ok(self
            .values
            .iter()
            .map(|v| v.abs().powf(p))
            .sum::<f64>()
            .powf(1.0 / p))
    }

    /// Returns a copy scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> SparseVec {
        if factor == 0.0 {
            return SparseVec::zeros(self.dim);
        }
        SparseVec {
            dim: self.dim,
            terms: self.terms.clone(),
            values: self.values.iter().map(|v| v * factor).collect(),
        }
    }

    /// Returns this vector scaled onto the unit L2 ball.
    ///
    /// The zero vector is returned unchanged (there is no direction to keep).
    /// This is the normalisation the paper applies before SVM training.
    pub fn l2_normalized(&self) -> SparseVec {
        let norm = self.norm_l2();
        if norm == 0.0 {
            self.clone()
        } else {
            self.scaled(1.0 / norm)
        }
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimensionMismatch`] when the dimensions differ.
    pub fn add(&self, other: &SparseVec) -> Result<SparseVec, IrError> {
        self.merge_with(other, |a, b| a + b)
    }

    /// Element-wise difference (`self - other`).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimensionMismatch`] when the dimensions differ.
    pub fn sub(&self, other: &SparseVec) -> Result<SparseVec, IrError> {
        self.merge_with(other, |a, b| a - b)
    }

    /// Sum of all stored values (for count vectors: the document length).
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    fn merge_with(
        &self,
        other: &SparseVec,
        combine: impl Fn(f64, f64) -> f64,
    ) -> Result<SparseVec, IrError> {
        self.check_dim(other)?;
        let mut terms = Vec::with_capacity(self.nnz() + other.nnz());
        let mut values = Vec::with_capacity(self.nnz() + other.nnz());
        let (mut i, mut j) = (0usize, 0usize);
        let mut push = |t: TermId, v: f64| {
            if v != 0.0 {
                terms.push(t);
                values.push(v);
            }
        };
        while i < self.terms.len() || j < other.terms.len() {
            if j >= other.terms.len() || (i < self.terms.len() && self.terms[i] < other.terms[j]) {
                push(self.terms[i], combine(self.values[i], 0.0));
                i += 1;
            } else if i >= self.terms.len() || other.terms[j] < self.terms[i] {
                push(other.terms[j], combine(0.0, other.values[j]));
                j += 1;
            } else {
                push(self.terms[i], combine(self.values[i], other.values[j]));
                i += 1;
                j += 1;
            }
        }
        Ok(SparseVec {
            dim: self.dim,
            terms,
            values,
        })
    }

    pub(crate) fn check_dim(&self, other: &SparseVec) -> Result<(), IrError> {
        if self.dim != other.dim {
            Err(IrError::DimensionMismatch {
                left: self.dim,
                right: other.dim,
            })
        } else {
            Ok(())
        }
    }
}

impl fmt::Display for SparseVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SparseVec(dim={}, nnz={})", self.dim, self.nnz())
    }
}

impl FromIterator<(TermId, f64)> for SparseVec {
    /// Collects pairs into a vector whose dimension is one past the largest
    /// term id seen (or zero when empty).
    fn from_iter<I: IntoIterator<Item = (TermId, f64)>>(iter: I) -> Self {
        let pairs: Vec<(TermId, f64)> = iter.into_iter().collect();
        let dim = pairs
            .iter()
            .map(|&(t, _)| t as usize + 1)
            .max()
            .unwrap_or(0);
        SparseVec::from_pairs(dim, pairs).expect("dim computed from max term id")
    }
}

// Binary wire layout (see `crate::codec`): `dim` then the `terms`/`values`
// parallel arrays. Values travel as IEEE-754 bit patterns, so a decoded
// vector is bit-identical to the encoded one. Decoding re-validates the
// storage invariants (terms strictly ascending and in range, no stored
// zeros, arrays parallel) without the re-sort `from_pairs` would do.
impl codec::BinCodec for SparseVec {
    fn encode_bin(&self, out: &mut Vec<u8>) {
        codec::put_usize(out, self.dim);
        codec::put_u32s(out, &self.terms);
        codec::put_f64s(out, &self.values);
    }

    fn decode_bin(r: &mut codec::Reader<'_>) -> Result<Self, codec::CodecError> {
        let dim = r.get_usize()?;
        let terms = r.get_u32s()?;
        let values = r.get_f64s()?;
        if terms.len() != values.len() {
            return Err(codec::CodecError::new(format!(
                "SparseVec arrays disagree: {} terms vs {} values",
                terms.len(),
                values.len()
            )));
        }
        for pair in terms.windows(2) {
            if pair[0] >= pair[1] {
                return Err(codec::CodecError::new(
                    "SparseVec terms not strictly ascending",
                ));
            }
        }
        if let Some(&t) = terms.last() {
            if t as usize >= dim {
                return Err(codec::CodecError::new(format!(
                    "SparseVec term {t} out of range for dim {dim}"
                )));
            }
        }
        if values.contains(&0.0) {
            return Err(codec::CodecError::new("SparseVec stores a zero value"));
        }
        Ok(SparseVec { dim, terms, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(TermId, f64)]) -> SparseVec {
        SparseVec::from_pairs(16, pairs.iter().copied()).unwrap()
    }

    #[test]
    fn zeros_has_no_entries() {
        let z = SparseVec::zeros(10);
        assert_eq!(z.dim(), 10);
        assert_eq!(z.nnz(), 0);
        assert!(z.is_zero());
        assert_eq!(z.norm_l2(), 0.0);
    }

    #[test]
    fn from_pairs_sorts_and_merges_duplicates() {
        let a = v(&[(5, 1.0), (2, 2.0), (5, 3.0)]);
        assert_eq!(a.get(5), 4.0);
        assert_eq!(a.get(2), 2.0);
        assert_eq!(a.nnz(), 2);
        let collected: Vec<_> = a.iter().collect();
        assert_eq!(collected, vec![(2, 2.0), (5, 4.0)]);
    }

    #[test]
    fn from_pairs_drops_zeros_and_cancellations() {
        let a = v(&[(1, 0.0), (2, 5.0), (2, -5.0), (3, 1.0)]);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(3), 1.0);
    }

    #[test]
    fn from_pairs_single_pass_handles_cancel_then_readd() {
        // A run of duplicates that cancels mid-stream must not shadow a
        // later contribution to the same term.
        let a = v(&[(2, 5.0), (2, -5.0), (2, 3.0), (7, 0.0)]);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(2), 3.0);
    }

    #[test]
    fn terms_values_expose_sorted_storage() {
        let a = v(&[(5, 1.0), (2, 2.0)]);
        assert_eq!(a.terms(), &[2, 5]);
        assert_eq!(a.values(), &[2.0, 1.0]);
        assert_eq!(a.norm_l2_sq(), 5.0);
    }

    #[test]
    fn from_pairs_rejects_out_of_range() {
        let err = SparseVec::from_pairs(4, [(4, 1.0)]).unwrap_err();
        assert_eq!(err, IrError::TermOutOfRange { term: 4, dim: 4 });
    }

    #[test]
    fn dense_round_trip() {
        let dense = vec![0.0, 1.5, 0.0, -2.0];
        let s = SparseVec::from_dense(&dense);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.to_dense(), dense);
    }

    #[test]
    fn dot_product_matches_dense() {
        let a = v(&[(0, 1.0), (3, 2.0), (7, -1.0)]);
        let b = v(&[(3, 4.0), (7, 2.0), (9, 100.0)]);
        assert_eq!(a.dot(&b).unwrap(), 2.0 * 4.0 + -2.0);
    }

    #[test]
    fn dot_dimension_mismatch() {
        let a = SparseVec::zeros(3);
        let b = SparseVec::zeros(4);
        assert_eq!(
            a.dot(&b).unwrap_err(),
            IrError::DimensionMismatch { left: 3, right: 4 }
        );
    }

    #[test]
    fn norms_agree_on_345_triangle() {
        let a = v(&[(0, 3.0), (1, 4.0)]);
        assert_eq!(a.norm_l2(), 5.0);
        assert_eq!(a.norm_l1(), 7.0);
        assert!((a.norm_lp(2.0).unwrap() - 5.0).abs() < 1e-12);
        assert!((a.norm_lp(1.0).unwrap() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn lp_norm_rejects_bad_order() {
        let a = v(&[(0, 1.0)]);
        assert!(matches!(a.norm_lp(0.5), Err(IrError::InvalidOrder(_))));
        assert!(matches!(a.norm_lp(f64::NAN), Err(IrError::InvalidOrder(_))));
    }

    #[test]
    fn l2_normalized_is_unit_length() {
        let a = v(&[(0, 3.0), (1, 4.0)]);
        let n = a.l2_normalized();
        assert!((n.norm_l2() - 1.0).abs() < 1e-12);
        assert!((n.get(0) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn l2_normalized_zero_vector_is_noop() {
        let z = SparseVec::zeros(5);
        assert_eq!(z.l2_normalized(), z);
    }

    #[test]
    fn add_and_sub_are_elementwise() {
        let a = v(&[(1, 1.0), (2, 2.0)]);
        let b = v(&[(2, 3.0), (4, 4.0)]);
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.get(1), 1.0);
        assert_eq!(sum.get(2), 5.0);
        assert_eq!(sum.get(4), 4.0);
        let diff = a.sub(&b).unwrap();
        assert_eq!(diff.get(2), -1.0);
        assert_eq!(diff.get(4), -4.0);
    }

    #[test]
    fn sub_self_is_zero() {
        let a = v(&[(1, 1.0), (2, 2.0)]);
        let d = a.sub(&a).unwrap();
        assert!(d.is_zero());
    }

    #[test]
    fn scaled_by_zero_is_zero() {
        let a = v(&[(1, 1.0)]);
        assert!(a.scaled(0.0).is_zero());
    }

    #[test]
    fn from_iterator_infers_dim() {
        let s: SparseVec = [(2u32, 1.0), (9u32, 2.0)].into_iter().collect();
        assert_eq!(s.dim(), 10);
        assert_eq!(s.nnz(), 2);
    }

    #[test]
    fn display_mentions_shape() {
        let a = v(&[(1, 1.0)]);
        assert_eq!(a.to_string(), "SparseVec(dim=16, nnz=1)");
    }
}
