use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::{DocId, IrError, SparseVec, TermId};

/// One result of a similarity search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    /// Identifier of the matching document.
    pub doc: DocId,
    /// Cosine similarity to the query, in `[-1, 1]`.
    pub score: f64,
}

/// Heap entry ordered by ascending score so the root is the worst hit
/// (classic top-k pattern). Ties break on doc id for determinism.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    score: f64,
    doc: DocId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on score: BinaryHeap is a max-heap, we want min-at-root.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.doc.cmp(&self.doc))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Inverted index over tf-idf signature vectors for similarity-based search.
///
/// This is the "database of previously labeled signatures" retrieval path of
/// the paper: every indexed vector contributes postings `(doc, weight)` under
/// each of its non-zero terms, and a query is scored by accumulating
/// dot-products over the postings of its non-zero terms only. Indexed
/// vectors and queries are L2-normalised internally, so scores are cosine
/// similarities.
///
/// # Examples
///
/// ```
/// use fmeter_ir::{InvertedIndex, SparseVec};
///
/// let mut index = InvertedIndex::new(8);
/// index.insert(SparseVec::from_pairs(8, [(0, 1.0), (1, 1.0)]).unwrap()).unwrap();
/// index.insert(SparseVec::from_pairs(8, [(5, 2.0)]).unwrap()).unwrap();
///
/// let query = SparseVec::from_pairs(8, [(0, 3.0), (1, 3.0)]).unwrap();
/// let hits = index.search(&query, 1).unwrap();
/// assert_eq!(hits[0].doc, 0);
/// assert!((hits[0].score - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InvertedIndex {
    dim: usize,
    postings: Vec<Vec<(DocId, f64)>>,
    num_docs: usize,
}

impl InvertedIndex {
    /// Creates an empty index over a `dim`-term space.
    pub fn new(dim: usize) -> Self {
        InvertedIndex {
            dim,
            postings: vec![Vec::new(); dim],
            num_docs: 0,
        }
    }

    /// Inserts a signature vector, returning its assigned [`DocId`].
    ///
    /// The vector is L2-normalised before indexing. Zero vectors are
    /// accepted (they simply match nothing).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimensionMismatch`] when the vector dimension
    /// differs from the index dimension.
    pub fn insert(&mut self, vector: SparseVec) -> Result<DocId, IrError> {
        if vector.dim() != self.dim {
            return Err(IrError::DimensionMismatch {
                left: self.dim,
                right: vector.dim(),
            });
        }
        let id = self.num_docs;
        for (t, w) in vector.l2_normalized().iter() {
            self.postings[t as usize].push((id, w));
        }
        self.num_docs += 1;
        Ok(id)
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.num_docs
    }

    /// Returns `true` when no document has been indexed.
    pub fn is_empty(&self) -> bool {
        self.num_docs == 0
    }

    /// Dimensionality of the term space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of postings stored under `term`.
    pub fn posting_len(&self, term: TermId) -> usize {
        self.postings.get(term as usize).map_or(0, Vec::len)
    }

    /// Finds the `k` indexed documents most cosine-similar to `query`,
    /// best first. Documents sharing no term with the query are not
    /// returned (their similarity is zero).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimensionMismatch`] when the query dimension
    /// differs from the index dimension.
    pub fn search(&self, query: &SparseVec, k: usize) -> Result<Vec<SearchHit>, IrError> {
        if query.dim() != self.dim {
            return Err(IrError::DimensionMismatch {
                left: self.dim,
                right: query.dim(),
            });
        }
        if k == 0 || self.num_docs == 0 {
            return Ok(Vec::new());
        }
        let query = query.l2_normalized();
        // Accumulate scores over postings of the query's non-zero terms.
        let mut scores: Vec<f64> = vec![0.0; self.num_docs];
        let mut touched: Vec<DocId> = Vec::new();
        for (t, qw) in query.iter() {
            for &(doc, dw) in &self.postings[t as usize] {
                if scores[doc] == 0.0 {
                    touched.push(doc);
                }
                scores[doc] += qw * dw;
            }
        }
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        for doc in touched {
            let score = scores[doc];
            if score == 0.0 {
                continue;
            }
            heap.push(HeapEntry { score, doc });
            if heap.len() > k {
                heap.pop(); // evict the current worst
            }
        }
        let mut hits: Vec<SearchHit> = heap
            .into_iter()
            .map(|e| SearchHit {
                doc: e.doc,
                score: e.score,
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec8(pairs: &[(u32, f64)]) -> SparseVec {
        SparseVec::from_pairs(8, pairs.iter().copied()).unwrap()
    }

    fn sample_index() -> InvertedIndex {
        let mut idx = InvertedIndex::new(8);
        idx.insert(vec8(&[(0, 1.0), (1, 1.0)])).unwrap(); // doc 0
        idx.insert(vec8(&[(0, 1.0)])).unwrap(); // doc 1
        idx.insert(vec8(&[(4, 2.0), (5, 2.0)])).unwrap(); // doc 2
        idx
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let mut idx = InvertedIndex::new(4);
        assert_eq!(idx.insert(SparseVec::zeros(4)).unwrap(), 0);
        assert_eq!(idx.insert(SparseVec::zeros(4)).unwrap(), 1);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn insert_rejects_wrong_dim() {
        let mut idx = InvertedIndex::new(4);
        assert!(idx.insert(SparseVec::zeros(5)).is_err());
    }

    #[test]
    fn search_returns_exact_match_first() {
        let idx = sample_index();
        let hits = idx.search(&vec8(&[(0, 5.0), (1, 5.0)]), 3).unwrap();
        assert_eq!(hits[0].doc, 0);
        assert!((hits[0].score - 1.0).abs() < 1e-9);
        // doc 1 shares term 0 only: cos = 1/sqrt(2)
        assert_eq!(hits[1].doc, 1);
        assert!((hits[1].score - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
        // doc 2 shares nothing: absent
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn search_respects_k() {
        let idx = sample_index();
        let hits = idx.search(&vec8(&[(0, 1.0)]), 1).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, 1); // doc 1 is exactly the query direction
    }

    #[test]
    fn search_k_zero_and_empty_index() {
        let idx = sample_index();
        assert!(idx.search(&vec8(&[(0, 1.0)]), 0).unwrap().is_empty());
        let empty = InvertedIndex::new(8);
        assert!(empty.search(&vec8(&[(0, 1.0)]), 5).unwrap().is_empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn search_zero_query_matches_nothing() {
        let idx = sample_index();
        assert!(idx.search(&SparseVec::zeros(8), 5).unwrap().is_empty());
    }

    #[test]
    fn search_rejects_wrong_dim() {
        let idx = sample_index();
        assert!(idx.search(&SparseVec::zeros(9), 5).is_err());
    }

    #[test]
    fn posting_lengths_track_inserts() {
        let idx = sample_index();
        assert_eq!(idx.posting_len(0), 2);
        assert_eq!(idx.posting_len(4), 1);
        assert_eq!(idx.posting_len(7), 0);
    }

    #[test]
    fn ties_break_deterministically_by_doc_id() {
        let mut idx = InvertedIndex::new(4);
        idx.insert(SparseVec::from_pairs(4, [(0, 1.0)]).unwrap())
            .unwrap();
        idx.insert(SparseVec::from_pairs(4, [(0, 2.0)]).unwrap())
            .unwrap();
        let hits = idx
            .search(&SparseVec::from_pairs(4, [(0, 1.0)]).unwrap(), 2)
            .unwrap();
        // Both have cosine 1.0; lower doc id first.
        assert_eq!(hits[0].doc, 0);
        assert_eq!(hits[1].doc, 1);
    }
}
