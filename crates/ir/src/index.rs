use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::{DocId, IrError, SparseVec, TermId};

/// One result of a similarity search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    /// Identifier of the matching document.
    pub doc: DocId,
    /// Cosine similarity to the query, in `[-1, 1]`.
    pub score: f64,
}

/// Heap entry ordered by ascending score so the root is the worst hit
/// (classic top-k pattern). Ties break on doc id for determinism.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    score: f64,
    doc: DocId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on score: BinaryHeap is a max-heap, we want min-at-root.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.doc.cmp(&self.doc))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable scratch state for [`InvertedIndex::search_with`].
///
/// A search accumulates partial scores in a dense per-document buffer; a
/// fresh allocation per query is pure overhead once the daemon queries the
/// index continuously. The scratch keeps the buffers alive across calls
/// and invalidates stale entries with an *epoch stamp* instead of
/// clearing: bumping the epoch makes every slot logically zero in O(1).
///
/// # Examples
///
/// ```
/// use fmeter_ir::{InvertedIndex, SearchScratch, SparseVec};
///
/// let mut index = InvertedIndex::new(4);
/// index.insert(SparseVec::from_pairs(4, [(0, 1.0)]).unwrap()).unwrap();
/// let mut scratch = SearchScratch::new();
/// let q = SparseVec::from_pairs(4, [(0, 2.0)]).unwrap();
/// for _ in 0..3 {
///     let hits = index.search_with(&q, 1, &mut scratch).unwrap();
///     assert_eq!(hits[0].doc, 0);
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SearchScratch {
    epoch: u64,
    stamps: Vec<u64>,
    scores: Vec<f64>,
    touched: Vec<DocId>,
}

impl SearchScratch {
    /// Creates an empty scratch; buffers grow to the index size on first
    /// use.
    pub fn new() -> Self {
        SearchScratch::default()
    }

    /// Prepares for a query over `num_docs` documents and returns the
    /// fresh epoch.
    fn begin(&mut self, num_docs: usize) -> u64 {
        // Stale stamps from a smaller index are never equal to the new
        // epoch, so resizing with zeros is sound.
        if self.stamps.len() < num_docs {
            self.stamps.resize(num_docs, 0);
            self.scores.resize(num_docs, 0.0);
        }
        self.touched.clear();
        self.epoch += 1;
        self.epoch
    }
}

/// Inverted index over tf-idf signature vectors for similarity-based search.
///
/// This is the "database of previously labeled signatures" retrieval path of
/// the paper: every indexed vector contributes postings `(doc, weight)` under
/// each of its non-zero terms, and a query is scored by accumulating
/// dot-products over the postings of its non-zero terms only. Indexed
/// vectors and queries are L2-normalised internally, so scores are cosine
/// similarities.
///
/// # Examples
///
/// ```
/// use fmeter_ir::{InvertedIndex, SparseVec};
///
/// let mut index = InvertedIndex::new(8);
/// index.insert(SparseVec::from_pairs(8, [(0, 1.0), (1, 1.0)]).unwrap()).unwrap();
/// index.insert(SparseVec::from_pairs(8, [(5, 2.0)]).unwrap()).unwrap();
///
/// let query = SparseVec::from_pairs(8, [(0, 3.0), (1, 3.0)]).unwrap();
/// let hits = index.search(&query, 1).unwrap();
/// assert_eq!(hits[0].doc, 0);
/// assert!((hits[0].score - 1.0).abs() < 1e-9);
/// ```
///
/// # Storage layout
///
/// Postings live in one flat CSR-style buffer — `offsets[t]..offsets[t+1]`
/// delimits term `t`'s `(docs, weights)` parallel arrays — so a query's
/// accumulation streams contiguous memory with u32 doc ids (12 bytes per
/// posting instead of a pointer-chased 16). Fresh inserts land in small
/// per-term tail lists and are folded into the flat buffer by geometric
/// compaction, keeping `insert` amortised O(nnz).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InvertedIndex {
    dim: usize,
    /// Flat compacted postings: term `t` owns `docs[offsets[t]..offsets[t+1]]`.
    offsets: Vec<usize>,
    docs: Vec<u32>,
    weights: Vec<f64>,
    /// Per-term postings inserted since the last compaction.
    tail: Vec<PostingList>,
    /// Total postings in `tail` (compaction trigger).
    tail_len: usize,
    num_docs: usize,
}

/// One term's not-yet-compacted postings, as parallel arrays.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct PostingList {
    docs: Vec<u32>,
    weights: Vec<f64>,
}

/// A term's postings as parallel `(docs, weights)` slices.
type PostingSlices<'a> = (&'a [u32], &'a [f64]);

impl InvertedIndex {
    /// Creates an empty index over a `dim`-term space.
    pub fn new(dim: usize) -> Self {
        InvertedIndex {
            dim,
            offsets: vec![0; dim + 1],
            docs: Vec::new(),
            weights: Vec::new(),
            tail: vec![PostingList::default(); dim],
            tail_len: 0,
            num_docs: 0,
        }
    }

    /// Inserts a signature vector, returning its assigned [`DocId`].
    ///
    /// The vector is L2-normalised before indexing. Zero vectors are
    /// accepted (they simply match nothing).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimensionMismatch`] when the vector dimension
    /// differs from the index dimension.
    pub fn insert(&mut self, vector: SparseVec) -> Result<DocId, IrError> {
        if vector.dim() != self.dim {
            return Err(IrError::DimensionMismatch {
                left: self.dim,
                right: vector.dim(),
            });
        }
        let id = self.num_docs;
        debug_assert!(id <= u32::MAX as usize, "doc ids are stored as u32");
        for (t, w) in vector.l2_normalized().iter() {
            let list = &mut self.tail[t as usize];
            list.docs.push(id as u32);
            list.weights.push(w);
        }
        self.tail_len += vector.nnz();
        self.num_docs += 1;
        // Geometric trigger: fold the tail in once it reaches a quarter of
        // the flat buffer, so total compaction work stays O(N) amortised.
        if self.tail_len * 4 >= self.docs.len() + 256 {
            self.compact();
        }
        Ok(id)
    }

    /// Fully compacts the postings into the flat buffer.
    ///
    /// Inserts self-compact geometrically, but up to a quarter of the
    /// postings may sit in per-term tail lists at any moment. Call this
    /// once after bulk-loading a corpus so every query streams a single
    /// contiguous buffer.
    pub fn optimize(&mut self) {
        self.compact();
    }

    /// Folds the per-term tails into the flat postings buffer.
    fn compact(&mut self) {
        if self.tail_len == 0 {
            return;
        }
        let total = self.docs.len() + self.tail_len;
        let mut offsets = Vec::with_capacity(self.dim + 1);
        let mut docs = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        offsets.push(0);
        for t in 0..self.dim {
            let (lo, hi) = (self.offsets[t], self.offsets[t + 1]);
            docs.extend_from_slice(&self.docs[lo..hi]);
            weights.extend_from_slice(&self.weights[lo..hi]);
            let list = &mut self.tail[t];
            docs.append(&mut list.docs);
            weights.append(&mut list.weights);
            offsets.push(docs.len());
        }
        self.offsets = offsets;
        self.docs = docs;
        self.weights = weights;
        self.tail_len = 0;
    }

    /// Term `t`'s postings as `(flat, tail)` slice pairs; doc ids ascend
    /// across the concatenation because tail postings are always newer.
    #[inline]
    fn term_postings(&self, t: usize) -> (PostingSlices<'_>, PostingSlices<'_>) {
        let (lo, hi) = (self.offsets[t], self.offsets[t + 1]);
        let list = &self.tail[t];
        (
            (&self.docs[lo..hi], &self.weights[lo..hi]),
            (&list.docs, &list.weights),
        )
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.num_docs
    }

    /// Returns `true` when no document has been indexed.
    pub fn is_empty(&self) -> bool {
        self.num_docs == 0
    }

    /// Dimensionality of the term space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of postings stored under `term`.
    pub fn posting_len(&self, term: TermId) -> usize {
        let t = term as usize;
        if t >= self.dim {
            return 0;
        }
        (self.offsets[t + 1] - self.offsets[t]) + self.tail[t].docs.len()
    }

    /// Finds the `k` indexed documents most cosine-similar to `query`,
    /// best first. Documents sharing no term with the query are not
    /// returned (their similarity is zero).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimensionMismatch`] when the query dimension
    /// differs from the index dimension.
    pub fn search(&self, query: &SparseVec, k: usize) -> Result<Vec<SearchHit>, IrError> {
        self.search_with(query, k, &mut SearchScratch::new())
    }

    /// Like [`search`](Self::search) but reuses `scratch` across calls, so
    /// repeated queries perform no per-document allocations.
    ///
    /// Each document is visited exactly once per query: a visited stamp
    /// (not the accumulated score) decides membership in the candidate
    /// list, so a partial score that cancels to exactly `0.0`
    /// mid-accumulation cannot re-enter and occupy two top-k slots.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimensionMismatch`] when the query dimension
    /// differs from the index dimension.
    pub fn search_with(
        &self,
        query: &SparseVec,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> Result<Vec<SearchHit>, IrError> {
        if query.dim() != self.dim {
            return Err(IrError::DimensionMismatch {
                left: self.dim,
                right: query.dim(),
            });
        }
        if k == 0 || self.num_docs == 0 {
            return Ok(Vec::new());
        }
        // Normalise the query on the fly: scoring against unit-length
        // postings with weights `qw / ‖q‖` is exactly scoring with
        // `query.l2_normalized()`, without materialising it.
        let query_norm = query.norm_l2();
        if query_norm == 0.0 {
            return Ok(Vec::new());
        }
        let inv_norm = 1.0 / query_norm;
        let epoch = scratch.begin(self.num_docs);
        // Two accumulation strategies over the postings of the query's
        // non-zero terms. Both visit identical contributions in identical
        // order per document, so they produce bit-identical scores; only
        // the bookkeeping differs.
        let total_postings: usize = query.terms().iter().map(|&t| self.posting_len(t)).sum();
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        let mut push_hit = |doc: DocId, score: f64| {
            // A final score of exactly zero means "shares no signal with
            // the query" — same contract as an untouched doc.
            if score == 0.0 {
                return;
            }
            heap.push(HeapEntry { score, doc });
            if heap.len() > k {
                heap.pop(); // evict the current worst
            }
        };
        if total_postings * 2 >= self.num_docs {
            // Dense mode: the postings touch a large share of the corpus,
            // so zero the whole score buffer once and accumulate without
            // any per-posting membership test or branch.
            let scores = &mut scratch.scores[..self.num_docs];
            scores.fill(0.0);
            for (t, qw) in query.iter() {
                let qw = qw * inv_norm;
                let (flat, tail) = self.term_postings(t as usize);
                for part in [flat, tail] {
                    for (&doc, &dw) in part.0.iter().zip(part.1) {
                        scores[doc as usize] += qw * dw;
                    }
                }
            }
            for (doc, &score) in scores.iter().enumerate() {
                push_hit(doc, score);
            }
        } else {
            // Sparse mode: few candidates — track membership with the
            // epoch stamp (not the score, which can transiently cancel to
            // exactly 0.0 and must not re-enter the candidate list).
            for (t, qw) in query.iter() {
                let qw = qw * inv_norm;
                let (flat, tail) = self.term_postings(t as usize);
                for part in [flat, tail] {
                    for (&doc, &dw) in part.0.iter().zip(part.1) {
                        let doc = doc as usize;
                        if scratch.stamps[doc] != epoch {
                            scratch.stamps[doc] = epoch;
                            scratch.scores[doc] = qw * dw;
                            scratch.touched.push(doc);
                        } else {
                            scratch.scores[doc] += qw * dw;
                        }
                    }
                }
            }
            for &doc in &scratch.touched {
                push_hit(doc, scratch.scores[doc]);
            }
        }
        let mut hits: Vec<SearchHit> = heap
            .into_iter()
            .map(|e| SearchHit {
                doc: e.doc,
                score: e.score,
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec8(pairs: &[(u32, f64)]) -> SparseVec {
        SparseVec::from_pairs(8, pairs.iter().copied()).unwrap()
    }

    fn sample_index() -> InvertedIndex {
        let mut idx = InvertedIndex::new(8);
        idx.insert(vec8(&[(0, 1.0), (1, 1.0)])).unwrap(); // doc 0
        idx.insert(vec8(&[(0, 1.0)])).unwrap(); // doc 1
        idx.insert(vec8(&[(4, 2.0), (5, 2.0)])).unwrap(); // doc 2
        idx
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let mut idx = InvertedIndex::new(4);
        assert_eq!(idx.insert(SparseVec::zeros(4)).unwrap(), 0);
        assert_eq!(idx.insert(SparseVec::zeros(4)).unwrap(), 1);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn insert_rejects_wrong_dim() {
        let mut idx = InvertedIndex::new(4);
        assert!(idx.insert(SparseVec::zeros(5)).is_err());
    }

    #[test]
    fn search_returns_exact_match_first() {
        let idx = sample_index();
        let hits = idx.search(&vec8(&[(0, 5.0), (1, 5.0)]), 3).unwrap();
        assert_eq!(hits[0].doc, 0);
        assert!((hits[0].score - 1.0).abs() < 1e-9);
        // doc 1 shares term 0 only: cos = 1/sqrt(2)
        assert_eq!(hits[1].doc, 1);
        assert!((hits[1].score - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
        // doc 2 shares nothing: absent
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn search_respects_k() {
        let idx = sample_index();
        let hits = idx.search(&vec8(&[(0, 1.0)]), 1).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, 1); // doc 1 is exactly the query direction
    }

    #[test]
    fn search_k_zero_and_empty_index() {
        let idx = sample_index();
        assert!(idx.search(&vec8(&[(0, 1.0)]), 0).unwrap().is_empty());
        let empty = InvertedIndex::new(8);
        assert!(empty.search(&vec8(&[(0, 1.0)]), 5).unwrap().is_empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn search_zero_query_matches_nothing() {
        let idx = sample_index();
        assert!(idx.search(&SparseVec::zeros(8), 5).unwrap().is_empty());
    }

    #[test]
    fn search_rejects_wrong_dim() {
        let idx = sample_index();
        assert!(idx.search(&SparseVec::zeros(9), 5).is_err());
    }

    #[test]
    fn posting_lengths_track_inserts() {
        let idx = sample_index();
        assert_eq!(idx.posting_len(0), 2);
        assert_eq!(idx.posting_len(4), 1);
        assert_eq!(idx.posting_len(7), 0);
    }

    #[test]
    fn cancelling_partial_score_does_not_duplicate_hit() {
        // Regression: doc 0 carries a negative-weight posting, so against
        // this query its partial score cancels to exactly 0.0 after term 1
        // (+s then -s), then goes positive again on term 2. The old
        // score==0.0 membership test pushed doc 0 into the candidate list
        // twice; both copies carried the (higher) final score and evicted
        // doc 1 from the top-2 entirely.
        let mut idx = InvertedIndex::new(8);
        idx.insert(vec8(&[(0, 1.0), (1, -1.0), (2, 1.0)])).unwrap(); // doc 0
        idx.insert(vec8(&[(0, 1.0)])).unwrap(); // doc 1
        let query = vec8(&[(0, 1.0), (1, 1.0), (2, 2.0)]);
        let hits = idx.search(&query, 2).unwrap();
        assert_eq!(hits.len(), 2);
        assert_ne!(hits[0].doc, hits[1].doc, "a doc must occupy one slot only");
        // doc 0: (1 - 1 + 2)/(sqrt(6)*sqrt(3)), doc 1: 1/sqrt(6).
        assert_eq!(hits[0].doc, 0);
        assert_eq!(hits[1].doc, 1);
        assert!((hits[0].score - 2.0 / 18f64.sqrt()).abs() < 1e-12);
        assert!((hits[1].score - 1.0 / 6f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn sparse_mode_cancelling_partial_score_does_not_duplicate_hit() {
        // Same cancellation shape as above, but with enough unrelated docs
        // that the accumulator takes the stamp-tracked sparse path
        // (total_postings * 2 < num_docs).
        let mut idx = InvertedIndex::new(8);
        idx.insert(vec8(&[(0, 1.0), (1, -1.0), (2, 1.0)])).unwrap(); // doc 0
        for _ in 0..9 {
            idx.insert(vec8(&[(7, 1.0)])).unwrap(); // docs 1..=9, untouched
        }
        let query = vec8(&[(0, 1.0), (1, 1.0), (2, 2.0)]);
        let hits = idx.search(&query, 3).unwrap();
        assert_eq!(hits.len(), 1, "doc 0 must appear exactly once");
        assert_eq!(hits[0].doc, 0);
        assert!((hits[0].score - 2.0 / 18f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn sparse_and_dense_modes_agree() {
        // Build one corpus where a broad query takes the dense path and a
        // narrow query the sparse path; both must match a brute-force
        // cosine scan.
        let mut idx = InvertedIndex::new(8);
        let docs: Vec<SparseVec> = (0..12)
            .map(|i| vec8(&[(i % 8, 1.0 + i as f64), ((i + 3) % 8, 0.5)]))
            .collect();
        for d in &docs {
            idx.insert(d.clone()).unwrap();
        }
        for query in [
            vec8(&[(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)]), // dense
            vec8(&[(5, 1.0)]),                               // sparse
        ] {
            let hits = idx.search(&query, 12).unwrap();
            for h in &hits {
                let expected = crate::cosine_similarity(&query, &docs[h.doc]).unwrap();
                assert!(
                    (h.score - expected).abs() < 1e-12,
                    "doc {}: {} vs {}",
                    h.doc,
                    h.score,
                    expected
                );
            }
        }
    }

    #[test]
    fn search_with_scratch_reuse_matches_fresh_search() {
        let idx = sample_index();
        let mut scratch = SearchScratch::new();
        let queries = [
            vec8(&[(0, 5.0), (1, 5.0)]),
            vec8(&[(4, 1.0)]),
            SparseVec::zeros(8),
            vec8(&[(0, 1.0)]),
        ];
        for q in &queries {
            let fresh = idx.search(q, 3).unwrap();
            let reused = idx.search_with(q, 3, &mut scratch).unwrap();
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn scratch_tracks_index_growth() {
        let mut idx = InvertedIndex::new(8);
        idx.insert(vec8(&[(0, 1.0)])).unwrap();
        let mut scratch = SearchScratch::new();
        let q = vec8(&[(0, 1.0), (3, 1.0)]);
        assert_eq!(idx.search_with(&q, 5, &mut scratch).unwrap().len(), 1);
        // Grow the index; the same scratch must cover the new doc.
        idx.insert(vec8(&[(3, 2.0)])).unwrap();
        let hits = idx.search_with(&q, 5, &mut scratch).unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn ties_break_deterministically_by_doc_id() {
        let mut idx = InvertedIndex::new(4);
        idx.insert(SparseVec::from_pairs(4, [(0, 1.0)]).unwrap())
            .unwrap();
        idx.insert(SparseVec::from_pairs(4, [(0, 2.0)]).unwrap())
            .unwrap();
        let hits = idx
            .search(&SparseVec::from_pairs(4, [(0, 1.0)]).unwrap(), 2)
            .unwrap();
        // Both have cosine 1.0; lower doc id first.
        assert_eq!(hits[0].doc, 0);
        assert_eq!(hits[1].doc, 1);
    }
}
