use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::codec;
use crate::{DocId, IrError, SparseVec, TermId};

/// One result of a similarity search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    /// Identifier of the matching document.
    pub doc: DocId,
    /// Cosine similarity to the query, in `[-1, 1]`.
    pub score: f64,
}

/// Heap entry ordered by ascending score so the root is the worst hit
/// (classic top-k pattern). Ties break on doc id for determinism.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    score: f64,
    doc: DocId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on score: BinaryHeap is a max-heap, we want min-at-root.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.doc.cmp(&self.doc))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable scratch state for [`InvertedIndex::search_with`].
///
/// A search accumulates partial scores in a dense per-document buffer; a
/// fresh allocation per query is pure overhead once the daemon queries the
/// index continuously. The scratch keeps the buffers alive across calls
/// and invalidates stale entries with an *epoch stamp* instead of
/// clearing: bumping the epoch makes every slot logically zero in O(1).
///
/// # Examples
///
/// ```
/// use fmeter_ir::{InvertedIndex, SearchScratch, SparseVec};
///
/// let mut index = InvertedIndex::new(4);
/// index.insert(SparseVec::from_pairs(4, [(0, 1.0)]).unwrap()).unwrap();
/// let mut scratch = SearchScratch::new();
/// let q = SparseVec::from_pairs(4, [(0, 2.0)]).unwrap();
/// for _ in 0..3 {
///     let hits = index.search_with(&q, 1, &mut scratch).unwrap();
///     assert_eq!(hits[0].doc, 0);
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SearchScratch {
    epoch: u64,
    stamps: Vec<u64>,
    scores: Vec<f64>,
    touched: Vec<DocId>,
    /// WAND per-query-term cursors, reused across queries.
    cursors: Vec<WandCursor>,
    /// Cursor indices that contributed to the current candidate.
    touched_cursors: Vec<usize>,
    /// Per-cursor contribution to the current candidate's score.
    contrib: Vec<f64>,
    /// `prefix_bounds[i]` = sum of the `i + 1` smallest cursor bounds.
    prefix_bounds: Vec<f64>,
}

/// One query term's read position over its posting list during a WAND
/// search. Plain data (term id + position), so the scratch can own it
/// without borrowing the index.
#[derive(Debug, Clone, Copy, Default)]
struct WandCursor {
    term: TermId,
    /// Normalised query weight for this term.
    qw: f64,
    /// Upper bound on this term's score contribution for any document:
    /// `|qw| * max_impact[term]`.
    bound: f64,
    /// Position across the concatenated flat + tail postings.
    pos: usize,
    /// Total postings under the term.
    len: usize,
    /// Doc id at `pos`, cached so candidate selection never touches the
    /// postings buffers (`u32::MAX` once exhausted).
    doc: u32,
    /// Start of the term's flat postings in the index buffers, cached so
    /// an advance is two direct array reads instead of slice rebuilds.
    flat_lo: usize,
    /// Length of the term's flat postings (`pos >= flat_len` ⇒ tail).
    flat_len: usize,
    /// The most a *block*-level bound can undercut `bound` anywhere in
    /// the list: `bound - |qw| * min(block maxima)`, clamped to zero.
    /// Lets block-max search prove — from the cursor alone — that
    /// reading the block metadata cannot change a descend decision.
    refine: f64,
    /// The term's dequantization scale (`Int8` mode; zero otherwise),
    /// cached so the advance hot loop never chases `scale[term]`.
    dq_scale: f64,
    /// The term's dequantization offset (`Int8` mode; zero otherwise).
    dq_off: f64,
}

/// Absolute slack subtracted from the top-k threshold before a WAND skip:
/// a per-term bound sum and a fully accumulated score can round
/// differently in the last bits, and a pruned document must never be one
/// the exhaustive path would have kept. Scores are cosine similarities in
/// `[-1, 1]`, so 1e-9 dwarfs the accumulation error while costing
/// essentially no pruning power.
const WAND_SLACK: f64 = 1e-9;

/// How the flat (compacted) posting weights are stored.
///
/// Tail postings — inserts since the last compaction — always keep exact
/// `f64` weights; the mode governs only the flat buffer, which holds the
/// bulk of a compacted index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QuantizationMode {
    /// Exact IEEE-754 `f64` weights. Every search path is bit-identical
    /// to [`InvertedIndex::search_exhaustive`] over the same postings.
    #[default]
    Off,
    /// 8-bit per-term linear quantization: term `t`'s flat weights are
    /// stored as `u8` codes `q` decoding to `qoffset[t] + scale[t] * q`,
    /// with `qoffset[t]` the smallest weight under the term and
    /// `scale[t]` spanning the weight range in 255 steps. Shrinks the
    /// flat weight buffer 8x (plus 16 bytes per term of parameters) at a
    /// per-weight error of at most `scale[t] / 2` — about 0.2% of the
    /// term's weight spread. Searches remain bit-identical to
    /// [`InvertedIndex::search_exhaustive`] *over the same quantized
    /// index*; versus an unquantized index the scores shift slightly,
    /// which is why the quantized path is gated on recall, not bitwise
    /// equality.
    Int8,
}

impl QuantizationMode {
    /// Stable wire tag for the v6 binary codec.
    fn tag(self) -> u8 {
        match self {
            QuantizationMode::Off => 0,
            QuantizationMode::Int8 => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, codec::CodecError> {
        match tag {
            0 => Ok(QuantizationMode::Off),
            1 => Ok(QuantizationMode::Int8),
            t => Err(codec::CodecError::new(format!(
                "invalid quantization mode tag {t:#04x}"
            ))),
        }
    }
}

impl SearchScratch {
    /// Creates an empty scratch; buffers grow to the index size on first
    /// use.
    pub fn new() -> Self {
        SearchScratch::default()
    }

    /// Prepares for a query over `num_docs` documents and returns the
    /// fresh epoch.
    fn begin(&mut self, num_docs: usize) -> u64 {
        // Stale stamps from a smaller index are never equal to the new
        // epoch, so resizing with zeros is sound.
        if self.stamps.len() < num_docs {
            self.stamps.resize(num_docs, 0);
            self.scores.resize(num_docs, 0.0);
        }
        self.touched.clear();
        self.epoch += 1;
        self.epoch
    }
}

/// Inverted index over tf-idf signature vectors for similarity-based search.
///
/// This is the "database of previously labeled signatures" retrieval path of
/// the paper: every indexed vector contributes postings `(doc, weight)` under
/// each of its non-zero terms, and a query is scored by accumulating
/// dot-products over the postings of its non-zero terms only. Indexed
/// vectors and queries are L2-normalised internally, so scores are cosine
/// similarities.
///
/// # Examples
///
/// ```
/// use fmeter_ir::{InvertedIndex, SparseVec};
///
/// let mut index = InvertedIndex::new(8);
/// index.insert(SparseVec::from_pairs(8, [(0, 1.0), (1, 1.0)]).unwrap()).unwrap();
/// index.insert(SparseVec::from_pairs(8, [(5, 2.0)]).unwrap()).unwrap();
///
/// let query = SparseVec::from_pairs(8, [(0, 3.0), (1, 3.0)]).unwrap();
/// let hits = index.search(&query, 1).unwrap();
/// assert_eq!(hits[0].doc, 0);
/// assert!((hits[0].score - 1.0).abs() < 1e-9);
/// ```
///
/// # Storage layout
///
/// Postings live in one flat CSR-style buffer — `offsets[t]..offsets[t+1]`
/// delimits term `t`'s `(docs, weights)` parallel arrays — so a query's
/// accumulation streams contiguous memory with u32 doc ids (12 bytes per
/// posting instead of a pointer-chased 16). Fresh inserts land in small
/// per-term tail lists and are folded into the flat buffer by geometric
/// compaction, keeping `insert` amortised O(nnz).
///
/// The flat buffer is additionally carved into fixed-size *blocks* of
/// [`BLOCK_SIZE`](Self::BLOCK_SIZE) postings (per term, so a block never
/// spans terms), each carrying the max `|weight|` of its postings. These
/// shallow bounds let [`search_block_max`](Self::search_block_max) skip
/// whole blocks that the per-term bound alone cannot rule out. Flat
/// weights can optionally be stored 8-bit quantized — see
/// [`QuantizationMode`].
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    dim: usize,
    /// Flat compacted postings: term `t` owns `docs[offsets[t]..offsets[t+1]]`.
    offsets: Vec<usize>,
    docs: Vec<u32>,
    /// Flat weights in [`QuantizationMode::Off`]; empty in `Int8` mode
    /// (the weights live in `qweights` instead).
    weights: Vec<f64>,
    /// Per-term postings inserted since the last compaction.
    tail: Vec<PostingList>,
    /// Total postings in `tail` (compaction trigger).
    tail_len: usize,
    num_docs: usize,
    /// Per-term max-impact bound: the largest `|weight|` stored under the
    /// term across flat and tail postings, maintained through `insert`
    /// and compaction. `|qw| * max_impact[t]` bounds term `t`'s score
    /// contribution for any document — the WAND pruning invariant.
    /// Removals can leave it loose (still a sound upper bound) until the
    /// next [`purge`](Self::purge) recomputes it exactly.
    max_impact: Vec<f64>,
    /// Tombstones: `removed[d]` marks doc `d` as deleted. Doc ids are
    /// never reused; searches skip tombstoned docs and purging eventually
    /// drops their postings.
    removed: Vec<bool>,
    /// Number of tombstoned docs (`live_len = num_docs - num_removed`).
    num_removed: usize,
    /// Tombstoned docs whose postings still sit in the buffers (purge
    /// trigger).
    dead_unpurged: usize,
    /// Storage mode of the flat weights (tails are always exact `f64`).
    quantization: QuantizationMode,
    /// Quantized flat weights, parallel to `docs` (`Int8` mode only;
    /// empty in `Off` mode).
    qweights: Vec<u8>,
    /// Per-term quantization step (`Int8` mode only, else empty).
    scale: Vec<f64>,
    /// Per-term quantization origin — the smallest flat weight under the
    /// term (`Int8` mode only, else empty).
    qoffset: Vec<f64>,
    /// Per-term prefix into `block_max`: term `t` owns blocks
    /// `block_starts[t]..block_starts[t + 1]`, one per
    /// [`BLOCK_SIZE`](Self::BLOCK_SIZE) flat postings (the last block may
    /// be shorter). Rebuilt on every flat rewrite, so it always equals a
    /// recompute from the buffers.
    block_starts: Vec<usize>,
    /// Per-block max `|weight|` over the block's *stored* flat postings
    /// (dequantized values in `Int8` mode) — the shallow bound
    /// [`search_block_max`](Self::search_block_max) skips with.
    block_max: Vec<f64>,
}

/// One term's not-yet-compacted postings, as parallel arrays.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct PostingList {
    docs: Vec<u32>,
    weights: Vec<f64>,
}

/// Quantizes `w` onto the term's 8-bit grid (`0` when the term's weights
/// are all equal, i.e. `scale == 0`).
#[inline]
fn quantize(w: f64, scale: f64, offset: f64) -> u8 {
    if scale == 0.0 {
        return 0;
    }
    ((w - offset) / scale).round().clamp(0.0, 255.0) as u8
}

impl InvertedIndex {
    /// Number of flat postings per block-max block. Blocks never span
    /// terms: term `t`'s flat range is carved into `ceil(len / 128)`
    /// blocks, the last possibly short. 128 postings keep the block
    /// metadata at ~1/128th of the posting payload while still letting
    /// dense-term skips drop hundreds of postings at a time.
    pub const BLOCK_SIZE: usize = 128;

    /// Creates an empty index over a `dim`-term space.
    pub fn new(dim: usize) -> Self {
        InvertedIndex {
            dim,
            offsets: vec![0; dim + 1],
            docs: Vec::new(),
            weights: Vec::new(),
            tail: vec![PostingList::default(); dim],
            tail_len: 0,
            num_docs: 0,
            max_impact: vec![0.0; dim],
            removed: Vec::new(),
            num_removed: 0,
            dead_unpurged: 0,
            quantization: QuantizationMode::Off,
            qweights: Vec::new(),
            scale: Vec::new(),
            qoffset: Vec::new(),
            block_starts: vec![0; dim + 1],
            block_max: Vec::new(),
        }
    }

    /// Inserts a signature vector, returning its assigned [`DocId`].
    ///
    /// The vector is L2-normalised before indexing. Zero vectors are
    /// accepted (they simply match nothing).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimensionMismatch`] when the vector dimension
    /// differs from the index dimension.
    pub fn insert(&mut self, vector: SparseVec) -> Result<DocId, IrError> {
        if vector.dim() != self.dim {
            return Err(IrError::DimensionMismatch {
                left: self.dim,
                right: vector.dim(),
            });
        }
        let id = self.num_docs;
        debug_assert!(id <= u32::MAX as usize, "doc ids are stored as u32");
        for (t, w) in vector.l2_normalized().iter() {
            let list = &mut self.tail[t as usize];
            list.docs.push(id as u32);
            list.weights.push(w);
            let impact = &mut self.max_impact[t as usize];
            *impact = impact.max(w.abs());
        }
        self.tail_len += vector.nnz();
        self.num_docs += 1;
        self.removed.push(false);
        // Geometric trigger: fold the tail in once it reaches a quarter of
        // the flat buffer, so total compaction work stays O(N) amortised.
        if self.tail_len * 4 >= self.docs.len() + 256 {
            self.compact();
        }
        Ok(id)
    }

    /// Tombstones a document: it stops appearing in search results
    /// immediately, and its postings are physically dropped by the next
    /// purge (triggered geometrically, or by [`optimize`](Self::optimize)
    /// / [`rebuild_postings`](Self::rebuild_postings)). Doc ids are never
    /// reused — the id space keeps a permanent hole.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DocNotLive`] when `doc` was never inserted or
    /// is already removed.
    pub fn remove(&mut self, doc: DocId) -> Result<(), IrError> {
        if doc >= self.num_docs || self.removed[doc] {
            return Err(IrError::DocNotLive(doc));
        }
        self.removed[doc] = true;
        self.num_removed += 1;
        self.dead_unpurged += 1;
        // Geometric trigger, mirroring insert's: once a quarter of the
        // docs with postings still in the buffers are dead, rewrite the
        // buffers so search stops streaming (and bounding) ghosts.
        if self.dead_unpurged * 4 >= (self.live_len() + self.dead_unpurged).max(64) {
            self.purge();
        }
        Ok(())
    }

    /// Returns `true` when `doc` is inserted and not tombstoned.
    pub fn is_live(&self, doc: DocId) -> bool {
        doc < self.num_docs && !self.removed[doc]
    }

    /// Number of live (inserted, not removed) documents.
    pub fn live_len(&self) -> usize {
        self.num_docs - self.num_removed
    }

    /// Number of tombstoned documents.
    pub fn num_removed(&self) -> usize {
        self.num_removed
    }

    /// Rewrites every posting buffer, dropping tombstoned docs' postings
    /// and recomputing the per-term max-impact bounds exactly over the
    /// survivors (removal alone can only leave the bounds loose).
    fn purge(&mut self) {
        let total = self.docs.len() + self.tail_len;
        let mut offsets = Vec::with_capacity(self.dim + 1);
        let mut docs = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        offsets.push(0);
        for t in 0..self.dim {
            let (lo, hi) = (self.offsets[t], self.offsets[t + 1]);
            for i in lo..hi {
                let d = self.docs[i];
                if !self.removed[d as usize] {
                    docs.push(d);
                    weights.push(self.flat_weight(t, i));
                }
            }
            let list = &mut self.tail[t];
            for (&d, &w) in list.docs.iter().zip(&list.weights) {
                if !self.removed[d as usize] {
                    docs.push(d);
                    weights.push(w);
                }
            }
            list.docs.clear();
            list.weights.clear();
            offsets.push(docs.len());
        }
        self.tail_len = 0;
        self.dead_unpurged = 0;
        self.install_flat(offsets, docs, weights);
    }

    /// Fully compacts the postings into the flat buffer.
    ///
    /// Inserts self-compact geometrically, but up to a quarter of the
    /// postings may sit in per-term tail lists at any moment. Call this
    /// once after bulk-loading a corpus so every query streams a single
    /// contiguous buffer. When tombstones are present their postings are
    /// purged and the max-impact bounds tightened in the same rewrite.
    pub fn optimize(&mut self) {
        if self.dead_unpurged > 0 {
            self.purge();
        } else {
            self.compact();
        }
    }

    /// Folds the per-term tails into the flat postings buffer.
    fn compact(&mut self) {
        if self.tail_len == 0 {
            return;
        }
        let total = self.docs.len() + self.tail_len;
        let mut offsets = Vec::with_capacity(self.dim + 1);
        let mut docs = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        offsets.push(0);
        for t in 0..self.dim {
            let (lo, hi) = (self.offsets[t], self.offsets[t + 1]);
            docs.extend_from_slice(&self.docs[lo..hi]);
            match self.quantization {
                QuantizationMode::Off => weights.extend_from_slice(&self.weights[lo..hi]),
                QuantizationMode::Int8 => {
                    let (s, o) = (self.scale[t], self.qoffset[t]);
                    weights.extend(self.qweights[lo..hi].iter().map(|&q| o + s * f64::from(q)));
                }
            }
            let list = &mut self.tail[t];
            docs.append(&mut list.docs);
            weights.append(&mut list.weights);
            offsets.push(docs.len());
        }
        self.tail_len = 0;
        self.install_flat(offsets, docs, weights);
    }

    /// Replaces every posting with the given live vectors in one pass —
    /// the idf-refit path: when a re-weighting generation changes the
    /// stored weights (and possibly their term supports), the whole
    /// posting store is rewritten from the new vectors instead of
    /// patching term-by-term. Doc ids, tombstones, and the id space are
    /// preserved; tombstoned docs must be absent from `live`, and their
    /// postings are purged by the rewrite. Max-impact bounds come out
    /// exact.
    ///
    /// Vectors are L2-normalised exactly as [`insert`](Self::insert)
    /// does, so a rebuilt index is posting-for-posting identical to one
    /// freshly built from the same vectors.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DocNotLive`] when `live` names a doc outside
    /// the id space, a tombstoned doc, or repeats/disorders ids, and
    /// [`IrError::DimensionMismatch`] on a vector dimension mismatch.
    /// The index is left unchanged on error.
    pub fn rebuild_postings<'a, I>(&mut self, live: I) -> Result<(), IrError>
    where
        I: IntoIterator<Item = (DocId, &'a SparseVec)>,
    {
        let mut lists: Vec<PostingList> = vec![PostingList::default(); self.dim];
        let mut prev: Option<DocId> = None;
        for (doc, vector) in live {
            if !self.is_live(doc) || prev.is_some_and(|p| p >= doc) {
                return Err(IrError::DocNotLive(doc));
            }
            if vector.dim() != self.dim {
                return Err(IrError::DimensionMismatch {
                    left: self.dim,
                    right: vector.dim(),
                });
            }
            prev = Some(doc);
            for (t, w) in vector.l2_normalized().iter() {
                let list = &mut lists[t as usize];
                list.docs.push(doc as u32);
                list.weights.push(w);
            }
        }
        let total: usize = lists.iter().map(|l| l.docs.len()).sum();
        let mut offsets = Vec::with_capacity(self.dim + 1);
        let mut docs = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        offsets.push(0);
        for list in &mut lists {
            docs.append(&mut list.docs);
            weights.append(&mut list.weights);
            offsets.push(docs.len());
        }
        self.tail = lists;
        self.tail_len = 0;
        self.dead_unpurged = 0;
        self.install_flat(offsets, docs, weights);
        Ok(())
    }

    /// Renumbers the id space in place, dropping every tombstoned slot:
    /// live doc `d` becomes `remap[d]`, which must enumerate the live
    /// docs densely (`Some(0), Some(1), …` in old-id order, `None` for
    /// every tombstone). This is the vacuum path — one O(nnz) pass that
    /// *moves* the stored weights, never recomputing a float: a
    /// renumbered index is bit-identical to one rebuilt by re-inserting
    /// the survivors, at a fraction of the cost.
    ///
    /// The rewrite folds the tails into the flat buffer (the canonical
    /// compacted layout) and recomputes the max-impact bounds exactly,
    /// using comparisons only. Afterwards the index has no tombstones
    /// and `len() == live_len()`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DocNotLive`] when `remap` has the wrong
    /// length, maps a tombstone, skips a live doc, or is not the dense
    /// ascending enumeration. The index is unchanged on error.
    pub fn renumber_compact(&mut self, remap: &[Option<DocId>]) -> Result<(), IrError> {
        if remap.len() != self.num_docs {
            return Err(IrError::DocNotLive(remap.len()));
        }
        let mut next = 0usize;
        for (d, slot) in remap.iter().enumerate() {
            match (self.removed[d], slot) {
                (false, Some(new)) if *new == next => next += 1,
                (true, None) => {}
                _ => return Err(IrError::DocNotLive(d)),
            }
        }
        let live = next;
        let total = self.docs.len() + self.tail_len;
        let mut offsets = Vec::with_capacity(self.dim + 1);
        let mut docs = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        offsets.push(0);
        for t in 0..self.dim {
            let (lo, hi) = (self.offsets[t], self.offsets[t + 1]);
            for i in lo..hi {
                // remap is monotone over live docs, so mapped ids stay
                // ascending within the term's postings.
                if let Some(new) = remap[self.docs[i] as usize] {
                    docs.push(new as u32);
                    weights.push(self.flat_weight(t, i));
                }
            }
            let list = &mut self.tail[t];
            for (&d, &w) in list.docs.iter().zip(&list.weights) {
                if let Some(new) = remap[d as usize] {
                    docs.push(new as u32);
                    weights.push(w);
                }
            }
            list.docs.clear();
            list.weights.clear();
            offsets.push(docs.len());
        }
        self.tail_len = 0;
        self.num_docs = live;
        self.removed.clear();
        self.removed.resize(live, false);
        self.num_removed = 0;
        self.dead_unpurged = 0;
        self.install_flat(offsets, docs, weights);
        Ok(())
    }

    /// Installs a rewritten flat posting stream (exact `f64` weights)
    /// under the current quantization mode and recomputes every piece of
    /// derived state from the stored values: the per-term quantization
    /// parameters (`Int8`), the per-block max impacts, and the per-term
    /// max-impact bounds (over the stored flat weights plus whatever
    /// tail postings remain).
    ///
    /// Every flat rewrite funnels through here, so the maintained block
    /// metadata always equals a recompute from the buffers — the
    /// invariant the codec round-trip suite pins bitwise.
    fn install_flat(&mut self, offsets: Vec<usize>, docs: Vec<u32>, weights: Vec<f64>) {
        debug_assert_eq!(offsets.len(), self.dim + 1);
        debug_assert_eq!(docs.len(), weights.len());
        self.offsets = offsets;
        self.docs = docs;
        match self.quantization {
            QuantizationMode::Off => {
                self.weights = weights;
                self.qweights = Vec::new();
                self.scale = Vec::new();
                self.qoffset = Vec::new();
            }
            QuantizationMode::Int8 => {
                self.scale = vec![0.0; self.dim];
                self.qoffset = vec![0.0; self.dim];
                let mut qweights = Vec::with_capacity(weights.len());
                for t in 0..self.dim {
                    let (lo, hi) = (self.offsets[t], self.offsets[t + 1]);
                    if lo == hi {
                        continue;
                    }
                    // Per-term linear grid: origin at the smallest weight,
                    // 255 steps to the largest. The extremes quantize
                    // exactly (codes 0 and 255), everything else rounds to
                    // the nearest step — error at most `scale / 2`.
                    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
                    for &w in &weights[lo..hi] {
                        min = min.min(w);
                        max = max.max(w);
                    }
                    let scale = (max - min) / 255.0;
                    self.qoffset[t] = min;
                    self.scale[t] = scale;
                    for &w in &weights[lo..hi] {
                        qweights.push(quantize(w, scale, min));
                    }
                }
                self.qweights = qweights;
                self.weights = Vec::new();
            }
        }
        self.rebuild_blocks();
        self.recompute_max_impact();
    }

    /// Rebuilds `block_starts`/`block_max` from the flat buffers: one
    /// block per [`BLOCK_SIZE`](Self::BLOCK_SIZE) postings within each
    /// term's range, each holding the max `|stored weight|` of its
    /// postings.
    fn rebuild_blocks(&mut self) {
        let mut starts = Vec::with_capacity(self.dim + 1);
        starts.push(0usize);
        let mut maxima = Vec::with_capacity(self.docs.len().div_ceil(Self::BLOCK_SIZE));
        for t in 0..self.dim {
            let (lo, hi) = (self.offsets[t], self.offsets[t + 1]);
            for b in 0..(hi - lo).div_ceil(Self::BLOCK_SIZE) {
                let s = lo + b * Self::BLOCK_SIZE;
                let e = (s + Self::BLOCK_SIZE).min(hi);
                let mut m = 0.0f64;
                match self.quantization {
                    QuantizationMode::Off => {
                        for &w in &self.weights[s..e] {
                            m = m.max(w.abs());
                        }
                    }
                    QuantizationMode::Int8 => {
                        let (sc, o) = (self.scale[t], self.qoffset[t]);
                        for &q in &self.qweights[s..e] {
                            m = m.max((o + sc * f64::from(q)).abs());
                        }
                    }
                }
                maxima.push(m);
            }
            starts.push(maxima.len());
        }
        self.block_starts = starts;
        self.block_max = maxima;
    }

    /// Recomputes the per-term max-impact bounds from the stored
    /// postings: the block maxima already cover the flat buffer, so this
    /// folds them with the exact tail weights.
    fn recompute_max_impact(&mut self) {
        for t in 0..self.dim {
            let mut m = 0.0f64;
            for &bm in &self.block_max[self.block_starts[t]..self.block_starts[t + 1]] {
                m = m.max(bm);
            }
            for &w in &self.tail[t].weights {
                m = m.max(w.abs());
            }
            self.max_impact[t] = m;
        }
    }

    /// The stored weight at flat position `i` under `term` (dequantized
    /// in `Int8` mode).
    #[inline]
    fn flat_weight(&self, term: usize, i: usize) -> f64 {
        match self.quantization {
            QuantizationMode::Off => self.weights[i],
            QuantizationMode::Int8 => {
                self.qoffset[term] + self.scale[term] * f64::from(self.qweights[i])
            }
        }
    }

    /// Streams term `t`'s postings — flat (stored weights, dequantized
    /// in `Int8` mode) then tail — to `f(doc, weight)`. The mode branch
    /// is taken once per term, not per posting, so the `Off` path stays
    /// the tight two-slice zip it always was.
    #[inline]
    fn for_each_posting(&self, t: usize, mut f: impl FnMut(u32, f64)) {
        let (lo, hi) = (self.offsets[t], self.offsets[t + 1]);
        match self.quantization {
            QuantizationMode::Off => {
                for (&d, &w) in self.docs[lo..hi].iter().zip(&self.weights[lo..hi]) {
                    f(d, w);
                }
            }
            QuantizationMode::Int8 => {
                let (s, o) = (self.scale[t], self.qoffset[t]);
                for (&d, &q) in self.docs[lo..hi].iter().zip(&self.qweights[lo..hi]) {
                    f(d, o + s * f64::from(q));
                }
            }
        }
        let list = &self.tail[t];
        for (&d, &w) in list.docs.iter().zip(&list.weights) {
            f(d, w);
        }
    }

    /// Number of doc ids ever assigned, including tombstoned ones (the
    /// id-space size; see [`live_len`](Self::live_len) for the number of
    /// searchable documents).
    pub fn len(&self) -> usize {
        self.num_docs
    }

    /// Returns `true` when no document has been indexed.
    pub fn is_empty(&self) -> bool {
        self.num_docs == 0
    }

    /// Dimensionality of the term space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of postings stored under `term`.
    pub fn posting_len(&self, term: TermId) -> usize {
        let t = term as usize;
        if t >= self.dim {
            return 0;
        }
        (self.offsets[t + 1] - self.offsets[t]) + self.tail[t].docs.len()
    }

    /// Finds the `k` indexed documents most cosine-similar to `query`,
    /// best first. Documents sharing no term with the query are not
    /// returned (their similarity is zero).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimensionMismatch`] when the query dimension
    /// differs from the index dimension.
    pub fn search(&self, query: &SparseVec, k: usize) -> Result<Vec<SearchHit>, IrError> {
        self.search_with(query, k, &mut SearchScratch::new())
    }

    /// Like [`search`](Self::search) but reuses `scratch` across calls, so
    /// repeated queries perform no per-document allocations.
    ///
    /// Dispatches between two scoring strategies that return identical
    /// results: block-max WAND early-exit top-k
    /// ([`search_block_max`](Self::search_block_max)) when the corpus is
    /// large and `k` is a small fraction of it, and exhaustive
    /// accumulation ([`search_exhaustive`](Self::search_exhaustive))
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimensionMismatch`] when the query dimension
    /// differs from the index dimension.
    pub fn search_with(
        &self,
        query: &SparseVec,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> Result<Vec<SearchHit>, IrError> {
        // Document-at-a-time pruning pays off for selective queries over
        // large corpora: few terms (so per-candidate cursor bookkeeping
        // stays small and the bound sum can actually drop below the
        // top-k bar) and a small k. Dense whole-signature queries keep
        // the exhaustive accumulator — with hundreds of terms the
        // cumulative bound almost never prunes and DAAT degenerates to a
        // slower exhaustive pass.
        if self.num_docs >= 4096
            && k.saturating_mul(8) <= self.num_docs
            && query.nnz().saturating_mul(32) <= self.num_docs
        {
            self.search_block_max(query, k, scratch)
        } else {
            self.search_exhaustive(query, k, scratch)
        }
    }

    /// Exhaustive top-k: accumulates every posting of the query's
    /// non-zero terms, then heap-selects the `k` best.
    ///
    /// Each document is visited exactly once per query: a visited stamp
    /// (not the accumulated score) decides membership in the candidate
    /// list, so a partial score that cancels to exactly `0.0`
    /// mid-accumulation cannot re-enter and occupy two top-k slots.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimensionMismatch`] when the query dimension
    /// differs from the index dimension.
    pub fn search_exhaustive(
        &self,
        query: &SparseVec,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> Result<Vec<SearchHit>, IrError> {
        if query.dim() != self.dim {
            return Err(IrError::DimensionMismatch {
                left: self.dim,
                right: query.dim(),
            });
        }
        if k == 0 || self.num_docs == 0 {
            return Ok(Vec::new());
        }
        // Normalise the query on the fly: scoring against unit-length
        // postings with weights `qw / ‖q‖` is exactly scoring with
        // `query.l2_normalized()`, without materialising it.
        let query_norm = query.norm_l2();
        if query_norm == 0.0 {
            return Ok(Vec::new());
        }
        let inv_norm = 1.0 / query_norm;
        let epoch = scratch.begin(self.num_docs);
        // Two accumulation strategies over the postings of the query's
        // non-zero terms. Both visit identical contributions in identical
        // order per document, so they produce bit-identical scores; only
        // the bookkeeping differs.
        let total_postings: usize = query.terms().iter().map(|&t| self.posting_len(t)).sum();
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        let removed = &self.removed;
        let mut push_hit = |doc: DocId, score: f64| {
            // A final score of exactly zero means "shares no signal with
            // the query" — same contract as an untouched doc. Tombstoned
            // docs may still have postings (purging is lazy) and are
            // filtered here.
            if score == 0.0 || removed[doc] {
                return;
            }
            heap.push(HeapEntry { score, doc });
            if heap.len() > k {
                heap.pop(); // evict the current worst
            }
        };
        if total_postings * 2 >= self.num_docs {
            // Dense mode: the postings touch a large share of the corpus,
            // so zero the whole score buffer once and accumulate without
            // any per-posting membership test or branch.
            let scores = &mut scratch.scores[..self.num_docs];
            scores.fill(0.0);
            for (t, qw) in query.iter() {
                let qw = qw * inv_norm;
                self.for_each_posting(t as usize, |doc, dw| {
                    scores[doc as usize] += qw * dw;
                });
            }
            for (doc, &score) in scores.iter().enumerate() {
                push_hit(doc, score);
            }
        } else {
            // Sparse mode: few candidates — track membership with the
            // epoch stamp (not the score, which can transiently cancel to
            // exactly 0.0 and must not re-enter the candidate list).
            let stamps = &mut scratch.stamps;
            let scores = &mut scratch.scores;
            let touched = &mut scratch.touched;
            for (t, qw) in query.iter() {
                let qw = qw * inv_norm;
                self.for_each_posting(t as usize, |doc, dw| {
                    let doc = doc as usize;
                    if stamps[doc] != epoch {
                        stamps[doc] = epoch;
                        scores[doc] = qw * dw;
                        touched.push(doc);
                    } else {
                        scores[doc] += qw * dw;
                    }
                });
            }
            for &doc in touched.iter() {
                push_hit(doc, scores[doc]);
            }
        }
        let mut hits: Vec<SearchHit> = heap
            .into_iter()
            .map(|e| SearchHit {
                doc: e.doc,
                score: e.score,
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        Ok(hits)
    }

    /// WAND-style early-exit top-k: walks the query terms' posting lists
    /// document-at-a-time and uses the per-term max-impact bounds to skip
    /// every document whose score *upper bound* cannot displace the
    /// current k-th best hit. The traversal is the MaxScore variant of
    /// the WAND family (Turtle & Flood): cursors are split into
    /// *essential* terms (which drive the document iteration) and a
    /// *non-essential* prefix whose summed bounds sit below the top-k
    /// bar — non-essential lists never surface new candidates, they are
    /// only probed (with a binary-search seek) for documents the
    /// essential lists produce, and a probe abandons early once the
    /// partial score plus the unprobed bounds cannot reach the bar.
    ///
    /// Returns exactly what [`search_exhaustive`](Self::search_exhaustive)
    /// returns (same documents, bit-identical scores): a completed
    /// candidate re-sums its contributions in the same term-ascending
    /// order, and every pruning decision keeps `WAND_SLACK` (1e-9) of safety
    /// margin so bound rounding can never drop a true top-k member.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimensionMismatch`] when the query dimension
    /// differs from the index dimension.
    pub fn search_wand(
        &self,
        query: &SparseVec,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> Result<Vec<SearchHit>, IrError> {
        if query.dim() != self.dim {
            return Err(IrError::DimensionMismatch {
                left: self.dim,
                right: query.dim(),
            });
        }
        if k == 0 || self.num_docs == 0 {
            return Ok(Vec::new());
        }
        let query_norm = query.norm_l2();
        if query_norm == 0.0 {
            return Ok(Vec::new());
        }
        let inv_norm = 1.0 / query_norm;
        // Cursors stay in ascending term order so candidate scoring
        // accumulates contributions exactly like the exhaustive path.
        scratch.cursors.clear();
        for (t, qw) in query.iter() {
            let len = self.posting_len(t);
            if len == 0 {
                continue;
            }
            let qw = qw * inv_norm;
            let flat_lo = self.offsets[t as usize];
            let mut cursor = WandCursor {
                term: t,
                qw,
                bound: qw.abs() * self.max_impact[t as usize],
                pos: 0,
                len,
                doc: 0,
                flat_lo,
                flat_len: self.offsets[t as usize + 1] - flat_lo,
                refine: 0.0,
                dq_scale: match self.quantization {
                    QuantizationMode::Off => 0.0,
                    QuantizationMode::Int8 => self.scale[t as usize],
                },
                dq_off: match self.quantization {
                    QuantizationMode::Off => 0.0,
                    QuantizationMode::Int8 => self.qoffset[t as usize],
                },
            };
            cursor.doc = self.cursor_doc(&cursor);
            scratch.cursors.push(cursor);
        }
        let cursors = &mut scratch.cursors;
        let touched = &mut scratch.touched_cursors;
        let contrib = &mut scratch.contrib;
        let prefix_bounds = &mut scratch.prefix_bounds;
        // Bound-ascending cursor order: the non-essential set is always a
        // prefix of this ordering, so the essential boundary is a single
        // monotonically advancing index.
        cursors.sort_unstable_by(|a, b| a.bound.total_cmp(&b.bound).then(a.term.cmp(&b.term)));
        let m = cursors.len();
        prefix_bounds.clear();
        let mut acc = 0.0;
        for c in cursors.iter() {
            acc += c.bound;
            prefix_bounds.push(acc);
        }
        contrib.clear();
        contrib.resize(m, 0.0);
        touched.clear();
        let mut essential_from = 0;
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        loop {
            // Current entry bar: the k-th best score so far (with slack),
            // or no bar at all while the heap is filling.
            let threshold = if heap.len() == k {
                heap.peek().expect("heap is full").score - WAND_SLACK
            } else {
                f64::NEG_INFINITY
            };
            // Grow the non-essential prefix while its total bound stays
            // under the bar (the boundary only ever moves forward, since
            // the bar only ever rises).
            while essential_from < m && prefix_bounds[essential_from] < threshold {
                essential_from += 1;
            }
            if essential_from >= m {
                break; // even all bounds together cannot reach the bar
            }
            // Next candidate: the smallest live doc under an essential
            // cursor. Documents carried only by non-essential terms are
            // unreachable by construction of the boundary.
            let mut pivot_doc = u32::MAX;
            for c in &cursors[essential_from..] {
                pivot_doc = pivot_doc.min(c.doc);
            }
            if pivot_doc == u32::MAX {
                break; // every essential list is exhausted
            }
            // Tombstoned candidate: advance the essential cursors past it
            // and move on without scoring (same exclusion the exhaustive
            // path applies at hit-push time).
            if self.removed[pivot_doc as usize] {
                for c in cursors[essential_from..].iter_mut() {
                    if c.doc == pivot_doc {
                        self.cursor_advance(c);
                    }
                }
                continue;
            }
            // Essential contributions: every matching essential cursor
            // advances past the candidate (they drive the iteration).
            // `partial` orders its adds by bound, not term — it is only a
            // pruning estimate; the exact sum is rebuilt below.
            touched.clear();
            let mut partial = 0.0;
            for ci in essential_from..m {
                if cursors[ci].doc == pivot_doc {
                    let p = cursors[ci].qw * self.cursor_advance(&mut cursors[ci]);
                    contrib[ci] = p;
                    touched.push(ci);
                    partial += p;
                }
            }
            // Probe the non-essential terms in bound-descending order,
            // abandoning as soon as the unprobed bounds cannot lift the
            // candidate over the bar.
            let mut abandoned = false;
            for ci in (0..essential_from).rev() {
                if partial + prefix_bounds[ci] < threshold {
                    abandoned = true;
                    break;
                }
                if cursors[ci].doc < pivot_doc {
                    self.cursor_seek(&mut cursors[ci], pivot_doc);
                }
                if cursors[ci].doc == pivot_doc {
                    let p = cursors[ci].qw * self.cursor_advance(&mut cursors[ci]);
                    contrib[ci] = p;
                    touched.push(ci);
                    partial += p;
                }
            }
            if !abandoned {
                // Exact score: the same contributions the exhaustive path
                // accumulates, re-summed in ascending term order so the
                // result is bit-identical.
                touched.sort_unstable_by_key(|&ci| cursors[ci].term);
                let mut score = 0.0;
                for &ci in touched.iter() {
                    score += contrib[ci];
                }
                // Zero means "shares no signal with the query", same
                // contract as the exhaustive path.
                if score != 0.0 {
                    heap.push(HeapEntry {
                        score,
                        doc: pivot_doc as DocId,
                    });
                    if heap.len() > k {
                        heap.pop();
                    }
                }
            }
            for &ci in touched.iter() {
                contrib[ci] = 0.0;
            }
        }
        let mut hits: Vec<SearchHit> = heap
            .into_iter()
            .map(|e| SearchHit {
                doc: e.doc,
                score: e.score,
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        Ok(hits)
    }

    /// Block-max WAND top-k (BMW over the MaxScore cursor split): the
    /// same essential/non-essential traversal as
    /// [`search_wand`](Self::search_wand), with one extra *shallow* test
    /// before a candidate is scored. The per-term bounds pick the pivot;
    /// the current blocks' maxima then refine the pivot's score bound,
    /// and when even that refined bound cannot reach the top-k bar the
    /// search skips straight past the shortest matching block — pruning
    /// a whole block of postings (up to [`BLOCK_SIZE`](Self::BLOCK_SIZE)
    /// per matching term) with a handful of comparisons, where plain
    /// WAND would have descended and scored posting by posting.
    ///
    /// The skip is sound because every document before the skip target is
    /// covered by the very bounds that were summed: non-essential terms
    /// by their term-level prefix bound, matching essential cursors by
    /// their current block's maximum (the target never passes a matching
    /// block's end), and the remaining essential cursors hold no
    /// documents below the target at all.
    ///
    /// Candidates that survive the shallow test are scored by exactly
    /// the code [`search_wand`](Self::search_wand) uses, so the result
    /// is bit-identical to
    /// [`search_exhaustive`](Self::search_exhaustive) over the same
    /// index — in *any* [`QuantizationMode`] (a quantized index shifts
    /// what the stored weights are, not how they are scored).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimensionMismatch`] when the query dimension
    /// differs from the index dimension.
    pub fn search_block_max(
        &self,
        query: &SparseVec,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> Result<Vec<SearchHit>, IrError> {
        if query.dim() != self.dim {
            return Err(IrError::DimensionMismatch {
                left: self.dim,
                right: query.dim(),
            });
        }
        if k == 0 || self.num_docs == 0 {
            return Ok(Vec::new());
        }
        let query_norm = query.norm_l2();
        if query_norm == 0.0 {
            return Ok(Vec::new());
        }
        let inv_norm = 1.0 / query_norm;
        scratch.cursors.clear();
        for (t, qw) in query.iter() {
            let len = self.posting_len(t);
            if len == 0 {
                continue;
            }
            let qw = qw * inv_norm;
            let flat_lo = self.offsets[t as usize];
            let mut cursor = WandCursor {
                term: t,
                qw,
                bound: qw.abs() * self.max_impact[t as usize],
                pos: 0,
                len,
                doc: 0,
                flat_lo,
                flat_len: self.offsets[t as usize + 1] - flat_lo,
                refine: 0.0,
                dq_scale: match self.quantization {
                    QuantizationMode::Off => 0.0,
                    QuantizationMode::Int8 => self.scale[t as usize],
                },
                dq_off: match self.quantization {
                    QuantizationMode::Off => 0.0,
                    QuantizationMode::Int8 => self.qoffset[t as usize],
                },
            };
            cursor.doc = self.cursor_doc(&cursor);
            // How much tighter this term's *block* maxima can get than
            // its term bound, at best. One contiguous scan per query
            // term; per pivot it makes "would the block metadata even
            // matter?" a cursor-local question.
            let (bs, be) = (
                self.block_starts[t as usize],
                self.block_starts[t as usize + 1],
            );
            if be > bs {
                let min_bm = self.block_max[bs..be]
                    .iter()
                    .copied()
                    .fold(f64::INFINITY, f64::min);
                cursor.refine = (cursor.bound - qw.abs() * min_bm).max(0.0);
            }
            scratch.cursors.push(cursor);
        }
        let cursors = &mut scratch.cursors;
        let touched = &mut scratch.touched_cursors;
        let contrib = &mut scratch.contrib;
        let prefix_bounds = &mut scratch.prefix_bounds;
        cursors.sort_unstable_by(|a, b| a.bound.total_cmp(&b.bound).then(a.term.cmp(&b.term)));
        let m = cursors.len();
        prefix_bounds.clear();
        let mut acc = 0.0;
        for c in cursors.iter() {
            acc += c.bound;
            prefix_bounds.push(acc);
        }
        contrib.clear();
        contrib.resize(m, 0.0);
        touched.clear();
        let mut essential_from = 0;
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        loop {
            let threshold = if heap.len() == k {
                heap.peek().expect("heap is full").score - WAND_SLACK
            } else {
                f64::NEG_INFINITY
            };
            while essential_from < m && prefix_bounds[essential_from] < threshold {
                essential_from += 1;
            }
            if essential_from >= m {
                break;
            }
            // Shallow pass, term level: a single scan over the essential
            // cursors finds the pivot (their minimum doc) while collecting
            // the matching set, its summed term bounds, and `next_doc` —
            // the first doc held by a *non*-matching essential cursor.
            // Term bounds hold globally, so a failed term-level check
            // skips every doc up to `next_doc` at once.
            touched.clear();
            let prefix = if essential_from > 0 {
                prefix_bounds[essential_from - 1]
            } else {
                0.0
            };
            let mut pivot_doc = u32::MAX;
            let mut next_doc = u32::MAX;
            let mut term_sum = prefix;
            let mut refine_sum = 0.0;
            for (off, c) in cursors[essential_from..].iter().enumerate() {
                let ci = essential_from + off;
                if c.doc < pivot_doc {
                    next_doc = next_doc.min(pivot_doc);
                    pivot_doc = c.doc;
                    touched.clear();
                    touched.push(ci);
                    term_sum = prefix + c.bound;
                    refine_sum = c.refine;
                } else if c.doc == pivot_doc {
                    term_sum += c.bound;
                    refine_sum += c.refine;
                    touched.push(ci);
                } else {
                    next_doc = next_doc.min(c.doc);
                }
            }
            if pivot_doc == u32::MAX {
                break;
            }
            if self.removed[pivot_doc as usize] {
                for &ci in touched.iter() {
                    self.cursor_advance(&mut cursors[ci]);
                }
                continue;
            }
            if term_sum < threshold {
                // Docs below `next_doc` are covered by the matching
                // cursors' term bounds plus the non-essential prefix —
                // none can clear the bar. Leap the matching cursors over
                // the whole window.
                for &ci in touched.iter() {
                    self.cursor_seek(&mut cursors[ci], next_doc);
                }
                continue;
            }
            // Shallow pass, block level — but only when it can matter:
            // `refine_sum` is the most the block maxima can undercut the
            // term bounds, so when even a full refinement leaves the
            // pivot over the bar, descend without touching the (colder)
            // block metadata at all.
            if term_sum - refine_sum < threshold {
                let mut block_sum = prefix;
                let mut min_block_last = u32::MAX;
                for &ci in touched.iter() {
                    let (bound, last) = self.cursor_block(&cursors[ci]);
                    block_sum += bound;
                    min_block_last = min_block_last.min(last);
                }
                if block_sum < threshold {
                    // No document up to the shortest matching block's
                    // end (and below the other essential cursors) can
                    // clear the bar: skip every matching cursor straight
                    // there instead of scoring the block posting by
                    // posting.
                    let target = next_doc.min(min_block_last.saturating_add(1));
                    for &ci in touched.iter() {
                        self.cursor_seek(&mut cursors[ci], target);
                    }
                    continue;
                }
            }
            // Deep pass: identical to `search_wand` from here on, so
            // surviving candidates score bit-identically.
            let mut partial = 0.0;
            for &ci in touched.iter() {
                let p = cursors[ci].qw * self.cursor_advance(&mut cursors[ci]);
                contrib[ci] = p;
                partial += p;
            }
            let mut abandoned = false;
            for ci in (0..essential_from).rev() {
                if partial + prefix_bounds[ci] < threshold {
                    abandoned = true;
                    break;
                }
                if cursors[ci].doc < pivot_doc {
                    self.cursor_seek(&mut cursors[ci], pivot_doc);
                }
                if cursors[ci].doc == pivot_doc {
                    let p = cursors[ci].qw * self.cursor_advance(&mut cursors[ci]);
                    contrib[ci] = p;
                    touched.push(ci);
                    partial += p;
                }
            }
            if !abandoned {
                touched.sort_unstable_by_key(|&ci| cursors[ci].term);
                let mut score = 0.0;
                for &ci in touched.iter() {
                    score += contrib[ci];
                }
                if score != 0.0 {
                    heap.push(HeapEntry {
                        score,
                        doc: pivot_doc as DocId,
                    });
                    if heap.len() > k {
                        heap.pop();
                    }
                }
            }
            for &ci in touched.iter() {
                contrib[ci] = 0.0;
            }
        }
        let mut hits: Vec<SearchHit> = heap
            .into_iter()
            .map(|e| SearchHit {
                doc: e.doc,
                score: e.score,
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        Ok(hits)
    }

    /// The doc id under a live cursor.
    #[inline]
    fn cursor_doc(&self, c: &WandCursor) -> u32 {
        if c.pos < c.flat_len {
            self.docs[c.flat_lo + c.pos]
        } else {
            self.tail[c.term as usize].docs[c.pos - c.flat_len]
        }
    }

    /// Returns the posting weight under a live cursor and steps it to the
    /// next posting, refreshing the cached doc id — two direct array
    /// reads in the (compacted) common case.
    #[inline]
    fn cursor_advance(&self, c: &mut WandCursor) -> f64 {
        let w = if c.pos < c.flat_len {
            // Same expression as `flat_weight`, with the per-term
            // scale/offset loads hoisted into the cursor at setup.
            match self.quantization {
                QuantizationMode::Off => self.weights[c.flat_lo + c.pos],
                QuantizationMode::Int8 => {
                    c.dq_off + c.dq_scale * f64::from(self.qweights[c.flat_lo + c.pos])
                }
            }
        } else {
            self.tail[c.term as usize].weights[c.pos - c.flat_len]
        };
        c.pos += 1;
        c.doc = if c.pos < c.len {
            self.cursor_doc(c)
        } else {
            u32::MAX
        };
        w
    }

    /// The shallow bound of the cursor's current position: its score
    /// contribution bound within the current *block*, and the last doc
    /// id that bound covers. Flat positions use the block maximum (the
    /// bound holds through the end of the block); tail positions fall
    /// back to the term-level bound, which covers the rest of the list
    /// (`u32::MAX`).
    #[inline]
    fn cursor_block(&self, c: &WandCursor) -> (f64, u32) {
        if c.pos < c.flat_len {
            let t = c.term as usize;
            let b = c.pos / Self::BLOCK_SIZE;
            let bound = c.qw.abs() * self.block_max[self.block_starts[t] + b];
            let last = ((b + 1) * Self::BLOCK_SIZE).min(c.flat_len) - 1;
            (bound, self.docs[c.flat_lo + last])
        } else {
            (c.bound, u32::MAX)
        }
    }

    /// Advances `c` to the first posting with doc id `>= target`
    /// (possibly past the end). The seek is block-aligned: the
    /// block-boundary doc ids locate the target block — checking the
    /// cursor's current and next block first, since consecutive pivots
    /// usually land a step or two ahead, before binary-searching the
    /// remaining blocks — then a short gallop plus binary search inside
    /// that one block finds the posting. Same result as binary-searching
    /// the whole remaining range, but the block phase touches one doc id
    /// per block and the near-miss fast path touches only a handful.
    fn cursor_seek(&self, c: &mut WandCursor, target: u32) {
        if c.pos < c.flat_len {
            let flat = &self.docs[c.flat_lo..c.flat_lo + c.flat_len];
            let nblocks = c.flat_len.div_ceil(Self::BLOCK_SIZE);
            let block_last = |b: usize| flat[((b + 1) * Self::BLOCK_SIZE).min(c.flat_len) - 1];
            // First block (at or after the cursor's) whose last doc id
            // reaches the target.
            let mut lo_b = c.pos / Self::BLOCK_SIZE;
            if block_last(lo_b) < target {
                lo_b += 1;
                if lo_b < nblocks && block_last(lo_b) < target {
                    let mut hi_b = nblocks;
                    lo_b += 1;
                    while lo_b < hi_b {
                        let mid = lo_b + (hi_b - lo_b) / 2;
                        if block_last(mid) < target {
                            lo_b = mid + 1;
                        } else {
                            hi_b = mid;
                        }
                    }
                }
            }
            if lo_b < nblocks {
                let start = (lo_b * Self::BLOCK_SIZE).max(c.pos);
                let end = ((lo_b + 1) * Self::BLOCK_SIZE).min(c.flat_len);
                // The block's last doc is >= target, so the hit is
                // inside. Gallop from the start: a seek that stays in the
                // cursor's own block is usually only a few postings ahead.
                let mut p = start;
                let mut step = 1;
                while p + step < end && flat[p + step] < target {
                    p += step;
                    step <<= 1;
                }
                let hi = (p + step + 1).min(end);
                c.pos = p + flat[p..hi].partition_point(|&d| d < target);
                c.doc = flat[c.pos];
                return;
            }
            c.pos = c.flat_len;
        }
        let tail = &self.tail[c.term as usize].docs;
        let tail_pos = c.pos - c.flat_len;
        c.pos += tail[tail_pos..].partition_point(|&d| d < target);
        c.doc = if c.pos < c.len {
            tail[c.pos - c.flat_len]
        } else {
            u32::MAX
        };
    }

    /// The largest `|weight|` indexed under `term` (the WAND per-term
    /// impact bound); zero for empty or out-of-range terms.
    pub fn max_impact(&self, term: TermId) -> f64 {
        self.max_impact.get(term as usize).copied().unwrap_or(0.0)
    }

    /// The active storage mode of the flat posting weights.
    pub fn quantization(&self) -> QuantizationMode {
        self.quantization
    }

    /// Switches the flat weight storage to `mode`, rewriting the posting
    /// store in place (a no-op when already in `mode`).
    ///
    /// The switch first folds tails and purges tombstoned postings
    /// (like [`optimize`](Self::optimize)), then re-encodes the flat
    /// weights: `Off → Int8` quantizes them onto per-term 8-bit grids,
    /// `Int8 → Off` materialises the dequantized values as `f64`s.
    /// Quantization rounds each weight to its nearest grid step, so a
    /// round trip through `Int8` does *not* restore the original bits —
    /// it restores the grid values (which a second `Int8` pass maps to
    /// themselves).
    pub fn set_quantization(&mut self, mode: QuantizationMode) {
        if mode == self.quantization {
            return;
        }
        self.optimize();
        let offsets = std::mem::take(&mut self.offsets);
        let docs = std::mem::take(&mut self.docs);
        let weights = match self.quantization {
            QuantizationMode::Off => std::mem::take(&mut self.weights),
            QuantizationMode::Int8 => {
                let mut out = Vec::with_capacity(docs.len());
                for t in 0..self.dim {
                    let (lo, hi) = (offsets[t], offsets[t + 1]);
                    let (s, o) = (self.scale[t], self.qoffset[t]);
                    out.extend(self.qweights[lo..hi].iter().map(|&q| o + s * f64::from(q)));
                }
                out
            }
        };
        self.quantization = mode;
        self.install_flat(offsets, docs, weights);
    }

    /// Number of block-max blocks carved over `term`'s flat postings
    /// (tail postings are not blocked; zero for out-of-range terms).
    pub fn num_blocks(&self, term: TermId) -> usize {
        let t = term as usize;
        if t >= self.dim {
            return 0;
        }
        self.block_starts[t + 1] - self.block_starts[t]
    }

    /// The largest `|stored weight|` in `block` of `term`'s flat
    /// postings (block `b` covers flat positions `b * BLOCK_SIZE ..` of
    /// the term's range); zero when out of range.
    pub fn block_max_impact(&self, term: TermId, block: usize) -> f64 {
        let t = term as usize;
        if t >= self.dim || block >= self.num_blocks(term) {
            return 0.0;
        }
        self.block_max[self.block_starts[t] + block]
    }

    /// Resident bytes of the posting store payload: flat doc ids and
    /// weights (8-bit codes plus per-term parameters in `Int8` mode),
    /// tail postings, and the block-max metadata. Vec capacity overhead
    /// and fixed struct fields are not counted — this is the number that
    /// shrinks ~4x when quantization is on, the one the capacity of an
    /// in-memory shard is sized by.
    pub fn postings_resident_bytes(&self) -> usize {
        let tail: usize = self
            .tail
            .iter()
            .map(|l| l.docs.len() * 4 + l.weights.len() * 8)
            .sum();
        self.docs.len() * 4
            + self.weights.len() * 8
            + self.qweights.len()
            + (self.scale.len() + self.qoffset.len()) * 8
            + tail
            + self.offsets.len() * 8
            + self.block_starts.len() * 8
            + self.block_max.len() * 8
    }
}

impl codec::BinCodec for PostingList {
    fn encode_bin(&self, out: &mut Vec<u8>) {
        codec::put_u32s(out, &self.docs);
        codec::put_f64s(out, &self.weights);
    }

    fn decode_bin(r: &mut codec::Reader<'_>) -> Result<Self, codec::CodecError> {
        let docs = r.get_u32s()?;
        let weights = r.get_f64s()?;
        if docs.len() != weights.len() {
            return Err(codec::CodecError::new(format!(
                "PostingList arrays disagree: {} docs vs {} weights",
                docs.len(),
                weights.len()
            )));
        }
        Ok(PostingList { docs, weights })
    }
}

/// Checks the legacy structural invariants shared by every decode
/// surface: per-term array lengths, parallel flat buffers (whichever of
/// `weights`/`qweights` is active), and an `indptr`-style `offsets`.
#[allow(clippy::too_many_arguments)]
fn check_index_shape(
    dim: usize,
    offsets: &[usize],
    docs_len: usize,
    weights_len: usize,
    tail_len: usize,
    max_impact_len: usize,
    removed_len: usize,
    num_docs: usize,
) -> Result<(), codec::CodecError> {
    let bad = |msg: String| Err(codec::CodecError::new(format!("InvertedIndex: {msg}")));
    if offsets.len() != dim + 1 || tail_len != dim || max_impact_len != dim {
        return bad(format!(
            "per-term arrays disagree with dim {dim}: {} offsets, {tail_len} tail, {max_impact_len} max_impact",
            offsets.len(),
        ));
    }
    if docs_len != weights_len {
        return bad(format!(
            "flat buffers disagree: {docs_len} docs vs {weights_len} weights"
        ));
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&docs_len) {
        return bad("offsets do not span the flat postings buffer".to_string());
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return bad("offsets are not monotone".to_string());
    }
    if removed_len != num_docs {
        return bad(format!("{removed_len} tombstone slots for {num_docs} docs"));
    }
    Ok(())
}

impl InvertedIndex {
    /// Encodes this index in the legacy v5 wire layout: the flat
    /// postings with exact `f64` weights and no block or quantization
    /// metadata — what `FMETERDB 5` envelopes carry. A quantized index
    /// writes its *dequantized* weights (the grid values), so a v5
    /// downgrade of an `Int8` index is a documented lossy step: the
    /// pre-quantization bits are already gone.
    pub fn encode_bin_legacy(&self, out: &mut Vec<u8>) {
        codec::put_usize(out, self.dim);
        codec::put_usizes(out, &self.offsets);
        codec::put_u32s(out, &self.docs);
        match self.quantization {
            QuantizationMode::Off => codec::put_f64s(out, &self.weights),
            QuantizationMode::Int8 => {
                codec::put_usize(out, self.qweights.len());
                for t in 0..self.dim {
                    let (lo, hi) = (self.offsets[t], self.offsets[t + 1]);
                    let (s, o) = (self.scale[t], self.qoffset[t]);
                    for &q in &self.qweights[lo..hi] {
                        codec::put_f64(out, o + s * f64::from(q));
                    }
                }
            }
        }
        codec::BinCodec::encode_bin(&self.tail, out);
        codec::put_usize(out, self.tail_len);
        codec::put_usize(out, self.num_docs);
        codec::put_f64s(out, &self.max_impact);
        codec::put_bools(out, &self.removed);
        codec::put_usize(out, self.num_removed);
        codec::put_usize(out, self.dead_unpurged);
    }

    /// Decodes the legacy v5 wire layout written by
    /// [`encode_bin_legacy`](Self::encode_bin_legacy). Quantization
    /// comes out `Off` and the block metadata is rebuilt from the
    /// decoded postings (v5 envelopes never carried it).
    ///
    /// # Errors
    ///
    /// Returns a [`codec::CodecError`] on truncated input or structural
    /// invariant violations, like any [`codec::BinCodec`] decode.
    pub fn decode_bin_legacy(r: &mut codec::Reader<'_>) -> Result<Self, codec::CodecError> {
        let dim = r.get_usize()?;
        let offsets = r.get_usizes()?;
        let docs = r.get_u32s()?;
        let weights = r.get_f64s()?;
        let tail = <Vec<PostingList> as codec::BinCodec>::decode_bin(r)?;
        let tail_len = r.get_usize()?;
        let num_docs = r.get_usize()?;
        let max_impact = r.get_f64s()?;
        let removed = r.get_bools()?;
        let num_removed = r.get_usize()?;
        let dead_unpurged = r.get_usize()?;
        check_index_shape(
            dim,
            &offsets,
            docs.len(),
            weights.len(),
            tail.len(),
            max_impact.len(),
            removed.len(),
            num_docs,
        )?;
        let mut idx = InvertedIndex {
            dim,
            offsets,
            docs,
            weights,
            tail,
            tail_len,
            num_docs,
            max_impact,
            removed,
            num_removed,
            dead_unpurged,
            quantization: QuantizationMode::Off,
            qweights: Vec::new(),
            scale: Vec::new(),
            qoffset: Vec::new(),
            block_starts: Vec::new(),
            block_max: Vec::new(),
        };
        idx.rebuild_blocks();
        Ok(idx)
    }
}

// v6 binary wire layout (see `crate::codec`): the legacy v5 fields in
// declaration order, then the quantization mode and its per-term
// parameters, then the block-max metadata (prefixed with the block size
// the blocks were carved at, so a future re-tuning of `BLOCK_SIZE` keeps
// loading old envelopes by rebuilding instead of rejecting). Decoding
// checks the structural invariants and — because block metadata is
// derived state whose unsoundness would silently corrupt search results
// rather than error — verifies the stored blocks bitwise against a
// recompute from the decoded postings.
impl codec::BinCodec for InvertedIndex {
    fn encode_bin(&self, out: &mut Vec<u8>) {
        codec::put_usize(out, self.dim);
        codec::put_usizes(out, &self.offsets);
        codec::put_u32s(out, &self.docs);
        codec::put_f64s(out, &self.weights);
        self.tail.encode_bin(out);
        codec::put_usize(out, self.tail_len);
        codec::put_usize(out, self.num_docs);
        codec::put_f64s(out, &self.max_impact);
        codec::put_bools(out, &self.removed);
        codec::put_usize(out, self.num_removed);
        codec::put_usize(out, self.dead_unpurged);
        codec::put_u8(out, self.quantization.tag());
        codec::put_f64s(out, &self.scale);
        codec::put_f64s(out, &self.qoffset);
        codec::put_bytes(out, &self.qweights);
        codec::put_usize(out, Self::BLOCK_SIZE);
        codec::put_usizes(out, &self.block_starts);
        codec::put_f64s(out, &self.block_max);
    }

    fn decode_bin(r: &mut codec::Reader<'_>) -> Result<Self, codec::CodecError> {
        let dim = r.get_usize()?;
        let offsets = r.get_usizes()?;
        let docs = r.get_u32s()?;
        let weights = r.get_f64s()?;
        let tail = Vec::<PostingList>::decode_bin(r)?;
        let tail_len = r.get_usize()?;
        let num_docs = r.get_usize()?;
        let max_impact = r.get_f64s()?;
        let removed = r.get_bools()?;
        let num_removed = r.get_usize()?;
        let dead_unpurged = r.get_usize()?;
        let quantization = QuantizationMode::from_tag(r.get_u8()?)?;
        let scale = r.get_f64s()?;
        let qoffset = r.get_f64s()?;
        let qweights = r.get_bytes()?;
        let block_size = r.get_usize()?;
        let block_starts = r.get_usizes()?;
        let block_max = r.get_f64s()?;

        let bad = |msg: String| Err(codec::CodecError::new(format!("InvertedIndex: {msg}")));
        // The active flat weight buffer must parallel `docs`; the other
        // must be absent.
        let weights_len = match quantization {
            QuantizationMode::Off => {
                if !qweights.is_empty() || !scale.is_empty() || !qoffset.is_empty() {
                    return bad("quantization arrays present in Off mode".to_string());
                }
                weights.len()
            }
            QuantizationMode::Int8 => {
                if !weights.is_empty() {
                    return bad("f64 flat weights present in Int8 mode".to_string());
                }
                if scale.len() != dim || qoffset.len() != dim {
                    return bad(format!(
                        "quantization parameters disagree with dim {dim}: {} scale, {} qoffset",
                        scale.len(),
                        qoffset.len()
                    ));
                }
                qweights.len()
            }
        };
        check_index_shape(
            dim,
            &offsets,
            docs.len(),
            weights_len,
            tail.len(),
            max_impact.len(),
            removed.len(),
            num_docs,
        )?;
        if block_size == 0 {
            return bad("block size is zero".to_string());
        }
        let mut idx = InvertedIndex {
            dim,
            offsets,
            docs,
            weights,
            tail,
            tail_len,
            num_docs,
            max_impact,
            removed,
            num_removed,
            dead_unpurged,
            quantization,
            qweights,
            scale,
            qoffset,
            block_starts: Vec::new(),
            block_max: Vec::new(),
        };
        idx.rebuild_blocks();
        if block_size == Self::BLOCK_SIZE {
            let same = idx.block_starts == block_starts
                && idx.block_max.len() == block_max.len()
                && idx
                    .block_max
                    .iter()
                    .zip(&block_max)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            if !same {
                return bad("stored block metadata disagrees with the postings".to_string());
            }
        }
        // A different (older/newer) block size: keep the rebuilt blocks.
        Ok(idx)
    }
}

// JSON surface (v0–v4 envelopes): hand-written to pin the *legacy* field
// shape — exactly the eleven pre-block-max fields, in declaration order,
// like the old derive emitted. Block metadata is derived state and the
// quantization extension must not leak into historical formats, so
// serialization dequantizes (`Int8` downgrades lossily to its grid
// values) and deserialization rebuilds blocks with quantization off.
impl Serialize for InvertedIndex {
    fn to_value(&self) -> serde::Value {
        let weights: Vec<f64> = match self.quantization {
            QuantizationMode::Off => self.weights.clone(),
            QuantizationMode::Int8 => (0..self.dim)
                .flat_map(|t| {
                    let (lo, hi) = (self.offsets[t], self.offsets[t + 1]);
                    let (s, o) = (self.scale[t], self.qoffset[t]);
                    self.qweights[lo..hi]
                        .iter()
                        .map(move |&q| o + s * f64::from(q))
                })
                .collect(),
        };
        serde::Value::Object(vec![
            (String::from("dim"), self.dim.to_value()),
            (String::from("offsets"), self.offsets.to_value()),
            (String::from("docs"), self.docs.to_value()),
            (String::from("weights"), weights.to_value()),
            (String::from("tail"), self.tail.to_value()),
            (String::from("tail_len"), self.tail_len.to_value()),
            (String::from("num_docs"), self.num_docs.to_value()),
            (String::from("max_impact"), self.max_impact.to_value()),
            (String::from("removed"), self.removed.to_value()),
            (String::from("num_removed"), self.num_removed.to_value()),
            (String::from("dead_unpurged"), self.dead_unpurged.to_value()),
        ])
    }
}

impl Deserialize for InvertedIndex {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let mut idx = InvertedIndex {
            dim: Deserialize::from_value(v.get_field("dim")?)?,
            offsets: Deserialize::from_value(v.get_field("offsets")?)?,
            docs: Deserialize::from_value(v.get_field("docs")?)?,
            weights: Deserialize::from_value(v.get_field("weights")?)?,
            tail: Deserialize::from_value(v.get_field("tail")?)?,
            tail_len: Deserialize::from_value(v.get_field("tail_len")?)?,
            num_docs: Deserialize::from_value(v.get_field("num_docs")?)?,
            max_impact: Deserialize::from_value(v.get_field("max_impact")?)?,
            removed: Deserialize::from_value(v.get_field("removed")?)?,
            num_removed: Deserialize::from_value(v.get_field("num_removed")?)?,
            dead_unpurged: Deserialize::from_value(v.get_field("dead_unpurged")?)?,
            quantization: QuantizationMode::Off,
            qweights: Vec::new(),
            scale: Vec::new(),
            qoffset: Vec::new(),
            block_starts: Vec::new(),
            block_max: Vec::new(),
        };
        if idx.offsets.len() != idx.dim + 1
            || idx.docs.len() != idx.weights.len()
            || idx.offsets.last() != Some(&idx.docs.len())
        {
            return Err(serde::Error(String::from(
                "InvertedIndex: inconsistent posting buffers",
            )));
        }
        idx.rebuild_blocks();
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec8(pairs: &[(u32, f64)]) -> SparseVec {
        SparseVec::from_pairs(8, pairs.iter().copied()).unwrap()
    }

    fn sample_index() -> InvertedIndex {
        let mut idx = InvertedIndex::new(8);
        idx.insert(vec8(&[(0, 1.0), (1, 1.0)])).unwrap(); // doc 0
        idx.insert(vec8(&[(0, 1.0)])).unwrap(); // doc 1
        idx.insert(vec8(&[(4, 2.0), (5, 2.0)])).unwrap(); // doc 2
        idx
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let mut idx = InvertedIndex::new(4);
        assert_eq!(idx.insert(SparseVec::zeros(4)).unwrap(), 0);
        assert_eq!(idx.insert(SparseVec::zeros(4)).unwrap(), 1);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn insert_rejects_wrong_dim() {
        let mut idx = InvertedIndex::new(4);
        assert!(idx.insert(SparseVec::zeros(5)).is_err());
    }

    #[test]
    fn search_returns_exact_match_first() {
        let idx = sample_index();
        let hits = idx.search(&vec8(&[(0, 5.0), (1, 5.0)]), 3).unwrap();
        assert_eq!(hits[0].doc, 0);
        assert!((hits[0].score - 1.0).abs() < 1e-9);
        // doc 1 shares term 0 only: cos = 1/sqrt(2)
        assert_eq!(hits[1].doc, 1);
        assert!((hits[1].score - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
        // doc 2 shares nothing: absent
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn search_respects_k() {
        let idx = sample_index();
        let hits = idx.search(&vec8(&[(0, 1.0)]), 1).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, 1); // doc 1 is exactly the query direction
    }

    #[test]
    fn search_k_zero_and_empty_index() {
        let idx = sample_index();
        assert!(idx.search(&vec8(&[(0, 1.0)]), 0).unwrap().is_empty());
        let empty = InvertedIndex::new(8);
        assert!(empty.search(&vec8(&[(0, 1.0)]), 5).unwrap().is_empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn search_zero_query_matches_nothing() {
        let idx = sample_index();
        assert!(idx.search(&SparseVec::zeros(8), 5).unwrap().is_empty());
    }

    #[test]
    fn search_rejects_wrong_dim() {
        let idx = sample_index();
        assert!(idx.search(&SparseVec::zeros(9), 5).is_err());
    }

    #[test]
    fn posting_lengths_track_inserts() {
        let idx = sample_index();
        assert_eq!(idx.posting_len(0), 2);
        assert_eq!(idx.posting_len(4), 1);
        assert_eq!(idx.posting_len(7), 0);
    }

    #[test]
    fn cancelling_partial_score_does_not_duplicate_hit() {
        // Regression: doc 0 carries a negative-weight posting, so against
        // this query its partial score cancels to exactly 0.0 after term 1
        // (+s then -s), then goes positive again on term 2. The old
        // score==0.0 membership test pushed doc 0 into the candidate list
        // twice; both copies carried the (higher) final score and evicted
        // doc 1 from the top-2 entirely.
        let mut idx = InvertedIndex::new(8);
        idx.insert(vec8(&[(0, 1.0), (1, -1.0), (2, 1.0)])).unwrap(); // doc 0
        idx.insert(vec8(&[(0, 1.0)])).unwrap(); // doc 1
        let query = vec8(&[(0, 1.0), (1, 1.0), (2, 2.0)]);
        let hits = idx.search(&query, 2).unwrap();
        assert_eq!(hits.len(), 2);
        assert_ne!(hits[0].doc, hits[1].doc, "a doc must occupy one slot only");
        // doc 0: (1 - 1 + 2)/(sqrt(6)*sqrt(3)), doc 1: 1/sqrt(6).
        assert_eq!(hits[0].doc, 0);
        assert_eq!(hits[1].doc, 1);
        assert!((hits[0].score - 2.0 / 18f64.sqrt()).abs() < 1e-12);
        assert!((hits[1].score - 1.0 / 6f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn sparse_mode_cancelling_partial_score_does_not_duplicate_hit() {
        // Same cancellation shape as above, but with enough unrelated docs
        // that the accumulator takes the stamp-tracked sparse path
        // (total_postings * 2 < num_docs).
        let mut idx = InvertedIndex::new(8);
        idx.insert(vec8(&[(0, 1.0), (1, -1.0), (2, 1.0)])).unwrap(); // doc 0
        for _ in 0..9 {
            idx.insert(vec8(&[(7, 1.0)])).unwrap(); // docs 1..=9, untouched
        }
        let query = vec8(&[(0, 1.0), (1, 1.0), (2, 2.0)]);
        let hits = idx.search(&query, 3).unwrap();
        assert_eq!(hits.len(), 1, "doc 0 must appear exactly once");
        assert_eq!(hits[0].doc, 0);
        assert!((hits[0].score - 2.0 / 18f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn sparse_and_dense_modes_agree() {
        // Build one corpus where a broad query takes the dense path and a
        // narrow query the sparse path; both must match a brute-force
        // cosine scan.
        let mut idx = InvertedIndex::new(8);
        let docs: Vec<SparseVec> = (0..12)
            .map(|i| vec8(&[(i % 8, 1.0 + i as f64), ((i + 3) % 8, 0.5)]))
            .collect();
        for d in &docs {
            idx.insert(d.clone()).unwrap();
        }
        for query in [
            vec8(&[(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)]), // dense
            vec8(&[(5, 1.0)]),                               // sparse
        ] {
            let hits = idx.search(&query, 12).unwrap();
            for h in &hits {
                let expected = crate::cosine_similarity(&query, &docs[h.doc]).unwrap();
                assert!(
                    (h.score - expected).abs() < 1e-12,
                    "doc {}: {} vs {}",
                    h.doc,
                    h.score,
                    expected
                );
            }
        }
    }

    #[test]
    fn search_with_scratch_reuse_matches_fresh_search() {
        let idx = sample_index();
        let mut scratch = SearchScratch::new();
        let queries = [
            vec8(&[(0, 5.0), (1, 5.0)]),
            vec8(&[(4, 1.0)]),
            SparseVec::zeros(8),
            vec8(&[(0, 1.0)]),
        ];
        for q in &queries {
            let fresh = idx.search(q, 3).unwrap();
            let reused = idx.search_with(q, 3, &mut scratch).unwrap();
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn scratch_tracks_index_growth() {
        let mut idx = InvertedIndex::new(8);
        idx.insert(vec8(&[(0, 1.0)])).unwrap();
        let mut scratch = SearchScratch::new();
        let q = vec8(&[(0, 1.0), (3, 1.0)]);
        assert_eq!(idx.search_with(&q, 5, &mut scratch).unwrap().len(), 1);
        // Grow the index; the same scratch must cover the new doc.
        idx.insert(vec8(&[(3, 2.0)])).unwrap();
        let hits = idx.search_with(&q, 5, &mut scratch).unwrap();
        assert_eq!(hits.len(), 2);
    }

    /// Deterministic midsize corpus with banded term usage (every doc
    /// hits a hot shared term, so postings overlap heavily).
    fn banded_corpus(n: usize, dim: u32) -> Vec<SparseVec> {
        (0..n)
            .map(|i| {
                let base = (i as u32 * 3) % (dim - 4);
                SparseVec::from_pairs(
                    dim as usize,
                    [
                        (base, 1.0 + (i % 7) as f64),
                        (base + 2, 0.5 + (i % 3) as f64),
                        (dim - 1, 0.25),
                    ],
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn wand_matches_exhaustive_bit_for_bit() {
        let dim = 64u32;
        let docs = banded_corpus(400, dim);
        let mut idx = InvertedIndex::new(dim as usize);
        for d in &docs {
            idx.insert(d.clone()).unwrap();
        }
        // Half-compacted on purpose: cursors must traverse flat + tail.
        let mut scratch = SearchScratch::new();
        for k in [1usize, 3, 10, 400] {
            for qseed in 0..8u32 {
                let q = SparseVec::from_pairs(
                    dim as usize,
                    [
                        (qseed * 5 % dim, 2.0),
                        (qseed * 11 % dim, 1.0),
                        (dim - 1, 0.5),
                    ],
                )
                .unwrap();
                let exhaustive = idx.search_exhaustive(&q, k, &mut scratch).unwrap();
                let wand = idx.search_wand(&q, k, &mut scratch).unwrap();
                assert_eq!(wand, exhaustive, "k={k} qseed={qseed}");
            }
        }
    }

    #[test]
    fn wand_matches_exhaustive_with_negative_weights() {
        let mut idx = InvertedIndex::new(8);
        idx.insert(vec8(&[(0, 1.0), (1, -1.0), (2, 1.0)])).unwrap();
        idx.insert(vec8(&[(0, 1.0), (2, -2.0)])).unwrap();
        idx.insert(vec8(&[(1, 3.0)])).unwrap();
        idx.insert(vec8(&[(0, -1.0), (1, 1.0)])).unwrap();
        idx.optimize();
        let mut scratch = SearchScratch::new();
        for k in 1..=4 {
            let q = vec8(&[(0, 1.0), (1, 1.0), (2, 2.0)]);
            let exhaustive = idx.search_exhaustive(&q, k, &mut scratch).unwrap();
            let wand = idx.search_wand(&q, k, &mut scratch).unwrap();
            assert_eq!(wand, exhaustive, "k={k}");
        }
    }

    #[test]
    fn wand_prunes_but_keeps_topk_on_skewed_impacts() {
        // One rare high-impact term vs a broad low-impact one: WAND
        // should skip most of the broad postings once the heap holds the
        // high-impact docs, and still return the exact answer.
        let dim = 16usize;
        let mut idx = InvertedIndex::new(dim);
        let n = 3000;
        for i in 0..n {
            let mut pairs = vec![(0u32, 0.05 + (i % 5) as f64 * 0.01)];
            if i % 100 == 0 {
                pairs.push((1, 10.0));
            }
            idx.insert(SparseVec::from_pairs(dim, pairs).unwrap())
                .unwrap();
        }
        idx.optimize();
        let q = SparseVec::from_pairs(dim, [(0, 0.3), (1, 3.0)]).unwrap();
        let mut scratch = SearchScratch::new();
        let wand = idx.search_wand(&q, 10, &mut scratch).unwrap();
        let exhaustive = idx.search_exhaustive(&q, 10, &mut scratch).unwrap();
        assert_eq!(wand, exhaustive);
        // Every returned doc carries the high-impact term.
        for h in &wand {
            assert_eq!(h.doc % 100, 0);
        }
    }

    #[test]
    fn search_with_dispatches_to_wand_at_scale() {
        // Above the dispatch threshold (large corpus, narrow query) the
        // default entry point must give the same answer as both explicit
        // strategies.
        let dim = 32u32;
        let docs = banded_corpus(5000, dim);
        let mut idx = InvertedIndex::new(dim as usize);
        for d in &docs {
            idx.insert(d.clone()).unwrap();
        }
        idx.optimize();
        let q = SparseVec::from_pairs(dim as usize, [(3, 1.0), (9, 2.0), (dim - 1, 0.5)]).unwrap();
        let mut scratch = SearchScratch::new();
        let auto = idx.search_with(&q, 10, &mut scratch).unwrap();
        let wand = idx.search_wand(&q, 10, &mut scratch).unwrap();
        let exhaustive = idx.search_exhaustive(&q, 10, &mut scratch).unwrap();
        assert_eq!(auto, wand);
        assert_eq!(auto, exhaustive);
    }

    #[test]
    fn max_impact_tracks_inserts_and_compaction() {
        let mut idx = InvertedIndex::new(4);
        assert_eq!(idx.max_impact(0), 0.0);
        idx.insert(SparseVec::from_pairs(4, [(0, 3.0), (1, -4.0)]).unwrap())
            .unwrap();
        // Vectors are L2-normalised on insert: weights are 3/5 and -4/5.
        assert!((idx.max_impact(0) - 0.6).abs() < 1e-12);
        assert!((idx.max_impact(1) - 0.8).abs() < 1e-12);
        idx.insert(SparseVec::from_pairs(4, [(0, 1.0)]).unwrap())
            .unwrap();
        assert!((idx.max_impact(0) - 1.0).abs() < 1e-12);
        idx.optimize();
        assert!((idx.max_impact(0) - 1.0).abs() < 1e-12);
        assert!((idx.max_impact(1) - 0.8).abs() < 1e-12);
        assert_eq!(idx.max_impact(3), 0.0);
        assert_eq!(idx.max_impact(99), 0.0);
    }

    #[test]
    fn wand_zero_query_and_k_zero() {
        let idx = sample_index();
        let mut scratch = SearchScratch::new();
        assert!(idx
            .search_wand(&SparseVec::zeros(8), 5, &mut scratch)
            .unwrap()
            .is_empty());
        assert!(idx
            .search_wand(&vec8(&[(0, 1.0)]), 0, &mut scratch)
            .unwrap()
            .is_empty());
        assert!(idx
            .search_wand(&SparseVec::zeros(9), 5, &mut scratch)
            .is_err());
    }

    #[test]
    fn remove_hides_doc_from_all_search_paths() {
        let dim = 64u32;
        let docs = banded_corpus(400, dim);
        let mut idx = InvertedIndex::new(dim as usize);
        for d in &docs {
            idx.insert(d.clone()).unwrap();
        }
        let mut scratch = SearchScratch::new();
        let q = docs[7].clone();
        let before = idx.search_exhaustive(&q, 5, &mut scratch).unwrap();
        assert_eq!(before[0].doc, 7);
        idx.remove(7).unwrap();
        assert_eq!(idx.live_len(), 399);
        assert_eq!(idx.num_removed(), 1);
        assert!(!idx.is_live(7));
        for hits in [
            idx.search_exhaustive(&q, 5, &mut scratch).unwrap(),
            idx.search_wand(&q, 5, &mut scratch).unwrap(),
            idx.search_with(&q, 5, &mut scratch).unwrap(),
        ] {
            assert!(hits.iter().all(|h| h.doc != 7), "doc 7 is tombstoned");
            assert_eq!(hits.len(), 5);
        }
    }

    #[test]
    fn remove_rejects_unknown_and_double_removal() {
        let mut idx = sample_index();
        assert_eq!(idx.remove(99), Err(IrError::DocNotLive(99)));
        idx.remove(1).unwrap();
        assert_eq!(idx.remove(1), Err(IrError::DocNotLive(1)));
        // Ids are never reused: a new insert continues the sequence.
        assert_eq!(idx.insert(vec8(&[(2, 1.0)])).unwrap(), 3);
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.live_len(), 3);
    }

    #[test]
    fn purge_drops_dead_postings_and_tightens_bounds() {
        let mut idx = InvertedIndex::new(4);
        // Doc 0 carries the largest weight under term 0.
        idx.insert(SparseVec::from_pairs(4, [(0, 1.0)]).unwrap())
            .unwrap();
        for _ in 0..3 {
            idx.insert(SparseVec::from_pairs(4, [(0, 3.0), (1, 4.0)]).unwrap())
                .unwrap();
        }
        assert!((idx.max_impact(0) - 1.0).abs() < 1e-12);
        idx.remove(0).unwrap();
        idx.optimize(); // purges tombstoned postings, recomputes bounds
        assert_eq!(idx.posting_len(0), 3);
        assert!((idx.max_impact(0) - 0.6).abs() < 1e-12);
        assert!((idx.max_impact(1) - 0.8).abs() < 1e-12);
        // The tombstone itself survives the purge.
        assert!(!idx.is_live(0));
        assert_eq!(idx.live_len(), 3);
    }

    #[test]
    fn renumber_compact_matches_fresh_build_bitwise() {
        let dim = 32u32;
        let docs = banded_corpus(150, dim);
        let mut idx = InvertedIndex::new(dim as usize);
        for d in &docs {
            idx.insert(d.clone()).unwrap();
        }
        for d in (0..150).step_by(4) {
            idx.remove(d).unwrap();
        }
        let mut remap: Vec<Option<DocId>> = vec![None; 150];
        let mut next = 0usize;
        for (d, slot) in remap.iter_mut().enumerate() {
            if idx.is_live(d) {
                *slot = Some(next);
                next += 1;
            }
        }
        idx.renumber_compact(&remap).unwrap();
        assert_eq!(idx.len(), next);
        assert_eq!(idx.live_len(), next);
        assert_eq!(idx.num_removed(), 0);
        // Bit-identical to a fresh build over the survivors: the rewrite
        // moved the already-normalised weights instead of recomputing.
        let mut fresh = InvertedIndex::new(dim as usize);
        for (d, v) in docs.iter().enumerate() {
            if d % 4 != 0 {
                fresh.insert(v.clone()).unwrap();
            }
        }
        fresh.optimize();
        let mut scratch = SearchScratch::new();
        for q in docs.iter().step_by(11) {
            let a = idx.search_exhaustive(q, 9, &mut scratch).unwrap();
            let b = fresh.search_exhaustive(q, 9, &mut scratch).unwrap();
            assert_eq!(a, b);
            let aw = idx.search_wand(q, 9, &mut scratch).unwrap();
            let bw = fresh.search_wand(q, 9, &mut scratch).unwrap();
            assert_eq!(aw, bw);
        }
        for t in 0..dim {
            assert_eq!(idx.max_impact(t), fresh.max_impact(t));
            assert_eq!(idx.posting_len(t), fresh.posting_len(t));
        }
    }

    #[test]
    fn renumber_compact_rejects_bad_remaps() {
        let mut idx = sample_index();
        idx.remove(1).unwrap();
        // Wrong length.
        assert_eq!(
            idx.renumber_compact(&[Some(0), None]),
            Err(IrError::DocNotLive(2))
        );
        // Maps a tombstone.
        assert_eq!(
            idx.renumber_compact(&[Some(0), Some(1), Some(2)]),
            Err(IrError::DocNotLive(1))
        );
        // Skips a live doc.
        assert_eq!(
            idx.renumber_compact(&[None, None, Some(0)]),
            Err(IrError::DocNotLive(0))
        );
        // Not dense-ascending.
        assert_eq!(
            idx.renumber_compact(&[Some(1), None, Some(0)]),
            Err(IrError::DocNotLive(0))
        );
        // The failed calls left the index untouched.
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.live_len(), 2);
        idx.renumber_compact(&[Some(0), None, Some(1)]).unwrap();
        assert_eq!(idx.len(), 2);
        assert!(idx.is_live(0) && idx.is_live(1));
    }

    #[test]
    fn removal_heavy_interleave_matches_fresh_index() {
        // Insert 200, remove every third (triggering geometric purges),
        // then compare every search path against an index freshly built
        // from the survivors under the *same doc ids* (via placeholder
        // zero vectors, which index nothing).
        let dim = 32u32;
        let docs = banded_corpus(200, dim);
        let mut idx = InvertedIndex::new(dim as usize);
        for d in &docs {
            idx.insert(d.clone()).unwrap();
        }
        let mut fresh = InvertedIndex::new(dim as usize);
        for (i, d) in docs.iter().enumerate() {
            if i % 3 == 0 {
                fresh.insert(SparseVec::zeros(dim as usize)).unwrap();
            } else {
                fresh.insert(d.clone()).unwrap();
            }
        }
        for i in (0..200).step_by(3) {
            idx.remove(i).unwrap();
        }
        let mut scratch = SearchScratch::new();
        for qseed in 0..6usize {
            let q = &docs[qseed * 31 % docs.len()];
            let a = idx.search_exhaustive(q, 10, &mut scratch).unwrap();
            let b = fresh.search_exhaustive(q, 10, &mut scratch).unwrap();
            assert_eq!(a, b, "exhaustive qseed={qseed}");
            let w = idx.search_wand(q, 10, &mut scratch).unwrap();
            assert_eq!(w, a, "wand qseed={qseed}");
        }
    }

    #[test]
    fn rebuild_postings_matches_fresh_build() {
        let dim = 16usize;
        let mut idx = InvertedIndex::new(dim);
        let docs: Vec<SparseVec> = (0..20)
            .map(|i| {
                SparseVec::from_pairs(dim, [(i % 16, 1.0 + i as f64), ((i + 5) % 16, 2.0)]).unwrap()
            })
            .collect();
        for d in &docs {
            idx.insert(d.clone()).unwrap();
        }
        idx.remove(3).unwrap();
        idx.remove(8).unwrap();
        // Re-weight the survivors (scaling changes nothing after L2
        // normalisation, so results must match the original vectors).
        let reweighted: Vec<(usize, SparseVec)> = (0..20)
            .filter(|&i| i != 3 && i != 8)
            .map(|i| (i, docs[i].scaled(2.0)))
            .collect();
        idx.rebuild_postings(reweighted.iter().map(|(i, v)| (*i, v)))
            .unwrap();
        let mut fresh = InvertedIndex::new(dim);
        for (i, d) in docs.iter().enumerate() {
            if i == 3 || i == 8 {
                fresh.insert(SparseVec::zeros(dim)).unwrap();
            } else {
                fresh.insert(d.clone()).unwrap();
            }
        }
        let mut scratch = SearchScratch::new();
        for q in &docs {
            let a = idx.search_exhaustive(q, 20, &mut scratch).unwrap();
            let b = fresh.search_exhaustive(q, 20, &mut scratch).unwrap();
            assert_eq!(a, b);
        }
        for t in 0..dim as u32 {
            assert_eq!(idx.posting_len(t), fresh.posting_len(t));
            assert!((idx.max_impact(t) - fresh.max_impact(t)).abs() < 1e-15);
        }
    }

    #[test]
    fn rebuild_postings_rejects_bad_input() {
        let mut idx = sample_index();
        idx.remove(1).unwrap();
        let v = vec8(&[(0, 1.0)]);
        // Tombstoned doc.
        assert!(idx.rebuild_postings([(1usize, &v)]).is_err());
        // Out of range.
        assert!(idx.rebuild_postings([(9usize, &v)]).is_err());
        // Disordered ids.
        assert!(idx.rebuild_postings([(2usize, &v), (0usize, &v)]).is_err());
        // Wrong dimension.
        let bad = SparseVec::zeros(9);
        assert!(idx.rebuild_postings([(0usize, &bad)]).is_err());
        // The failed rebuilds left the index intact.
        let hits = idx.search(&vec8(&[(0, 1.0)]), 3).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, 0);
    }

    #[test]
    fn ties_break_deterministically_by_doc_id() {
        let mut idx = InvertedIndex::new(4);
        idx.insert(SparseVec::from_pairs(4, [(0, 1.0)]).unwrap())
            .unwrap();
        idx.insert(SparseVec::from_pairs(4, [(0, 2.0)]).unwrap())
            .unwrap();
        let hits = idx
            .search(&SparseVec::from_pairs(4, [(0, 1.0)]).unwrap(), 2)
            .unwrap();
        // Both have cosine 1.0; lower doc id first.
        assert_eq!(hits[0].doc, 0);
        assert_eq!(hits[1].doc, 1);
    }

    /// Recomputes `block_starts`/`block_max` from the stored flat
    /// buffers and asserts the maintained metadata matches bitwise —
    /// the invariant every flat rewrite must uphold (the v6 codec
    /// hard-errors on any drift).
    fn assert_blocks_match_reference(idx: &InvertedIndex) {
        let mut starts = vec![0usize];
        let mut maxima = Vec::new();
        for t in 0..idx.dim {
            let (lo, hi) = (idx.offsets[t], idx.offsets[t + 1]);
            for b in 0..(hi - lo).div_ceil(InvertedIndex::BLOCK_SIZE) {
                let s = lo + b * InvertedIndex::BLOCK_SIZE;
                let e = (s + InvertedIndex::BLOCK_SIZE).min(hi);
                let mut m = 0.0f64;
                for i in s..e {
                    m = m.max(idx.flat_weight(t, i).abs());
                }
                maxima.push(m);
            }
            starts.push(maxima.len());
        }
        assert_eq!(idx.block_starts, starts, "block_starts drifted");
        assert_eq!(idx.block_max.len(), maxima.len());
        for (i, (have, want)) in idx.block_max.iter().zip(&maxima).enumerate() {
            assert_eq!(have.to_bits(), want.to_bits(), "block_max[{i}] drifted");
        }
    }

    #[test]
    fn block_metadata_tracks_every_flat_rewrite() {
        let dim = 32u32;
        let docs = banded_corpus(300, dim);
        let mut idx = InvertedIndex::new(dim as usize);
        for d in &docs {
            idx.insert(d.clone()).unwrap();
        }
        assert_blocks_match_reference(&idx);
        for d in (0..300).step_by(5) {
            idx.remove(d).unwrap(); // triggers geometric purges
        }
        assert_blocks_match_reference(&idx);
        idx.optimize();
        assert_blocks_match_reference(&idx);
        // Re-weight the survivors through rebuild_postings.
        let survivors: Vec<(usize, SparseVec)> = (0..300)
            .filter(|&i| idx.is_live(i))
            .map(|i| (i, docs[i].scaled(3.0)))
            .collect();
        idx.rebuild_postings(survivors.iter().map(|(i, v)| (*i, v)))
            .unwrap();
        assert_blocks_match_reference(&idx);
        // Renumber-compact away the tombstones.
        let mut remap = vec![None; idx.len()];
        let mut next = 0usize;
        for (d, slot) in remap.iter_mut().enumerate() {
            if idx.is_live(d) {
                *slot = Some(next);
                next += 1;
            }
        }
        idx.renumber_compact(&remap).unwrap();
        assert_blocks_match_reference(&idx);
        // Quantize, then back to exact (lossy, but metadata must track).
        idx.set_quantization(QuantizationMode::Int8);
        assert_blocks_match_reference(&idx);
        idx.set_quantization(QuantizationMode::Off);
        assert_blocks_match_reference(&idx);
        // Fresh tail inserts leave the flat block metadata untouched.
        idx.insert(docs[0].clone()).unwrap();
        assert_blocks_match_reference(&idx);
    }

    #[test]
    fn block_max_matches_exhaustive_bit_for_bit() {
        let dim = 64u32;
        let docs = banded_corpus(400, dim);
        let mut idx = InvertedIndex::new(dim as usize);
        for d in &docs {
            idx.insert(d.clone()).unwrap();
        }
        // Half-compacted on purpose: cursors must traverse flat + tail.
        let mut scratch = SearchScratch::new();
        for k in [1usize, 3, 10, 400] {
            for qseed in 0..8u32 {
                let q = SparseVec::from_pairs(
                    dim as usize,
                    [
                        (qseed * 5 % dim, 2.0),
                        (qseed * 11 % dim, 1.0),
                        (dim - 1, 0.5),
                    ],
                )
                .unwrap();
                let exhaustive = idx.search_exhaustive(&q, k, &mut scratch).unwrap();
                let bm = idx.search_block_max(&q, k, &mut scratch).unwrap();
                assert_eq!(bm, exhaustive, "k={k} qseed={qseed}");
            }
        }
    }

    #[test]
    fn block_max_matches_exhaustive_with_negative_weights_and_removals() {
        let mut idx = InvertedIndex::new(8);
        idx.insert(vec8(&[(0, 1.0), (1, -1.0), (2, 1.0)])).unwrap();
        idx.insert(vec8(&[(0, 1.0), (2, -2.0)])).unwrap();
        idx.insert(vec8(&[(1, 3.0)])).unwrap();
        idx.insert(vec8(&[(0, -1.0), (1, 1.0)])).unwrap();
        idx.optimize();
        idx.remove(1).unwrap(); // tombstone stays in the flat postings
        let mut scratch = SearchScratch::new();
        for k in 1..=4 {
            let q = vec8(&[(0, 1.0), (1, 1.0), (2, 2.0)]);
            let exhaustive = idx.search_exhaustive(&q, k, &mut scratch).unwrap();
            let bm = idx.search_block_max(&q, k, &mut scratch).unwrap();
            assert_eq!(bm, exhaustive, "k={k}");
        }
    }

    #[test]
    fn block_max_skips_blocks_on_skewed_impacts() {
        // Multi-block postings where one block carries all the impact:
        // block maxima let the search leap the flat blocks the term
        // bound alone cannot rule out, and the answer stays exact.
        let dim = 16usize;
        let mut idx = InvertedIndex::new(dim);
        let n = 3000;
        for i in 0..n {
            let mut pairs = vec![(0u32, 0.05 + (i % 5) as f64 * 0.01)];
            if i / 100 == 7 {
                pairs.push((1, 10.0)); // docs 700..800: one hot stripe
            }
            idx.insert(SparseVec::from_pairs(dim, pairs).unwrap())
                .unwrap();
        }
        idx.optimize();
        assert!(idx.num_blocks(0) > 4, "term 0 must span several blocks");
        let q = SparseVec::from_pairs(dim, [(0, 0.3), (1, 3.0)]).unwrap();
        let mut scratch = SearchScratch::new();
        let bm = idx.search_block_max(&q, 10, &mut scratch).unwrap();
        let exhaustive = idx.search_exhaustive(&q, 10, &mut scratch).unwrap();
        assert_eq!(bm, exhaustive);
        for h in &bm {
            assert!((700..800).contains(&h.doc));
        }
    }

    #[test]
    fn quantization_error_stays_within_half_step() {
        let dim = 32u32;
        let docs = banded_corpus(500, dim);
        let mut exact = InvertedIndex::new(dim as usize);
        for d in &docs {
            exact.insert(d.clone()).unwrap();
        }
        exact.optimize();
        let mut quant = exact.clone();
        quant.set_quantization(QuantizationMode::Int8);
        assert_eq!(quant.quantization(), QuantizationMode::Int8);
        for t in 0..dim as usize {
            let (lo, hi) = (exact.offsets[t], exact.offsets[t + 1]);
            let step = quant.scale[t];
            for i in lo..hi {
                let err = (exact.flat_weight(t, i) - quant.flat_weight(t, i)).abs();
                assert!(
                    err <= step / 2.0 + 1e-15,
                    "term {t} pos {i}: err {err} > scale/2 {}",
                    step / 2.0
                );
            }
        }
        // The quantized index is internally consistent: its block-max
        // search is bit-identical to its own exhaustive scan (both
        // score the same dequantized stored weights).
        let mut scratch = SearchScratch::new();
        for q in docs.iter().step_by(37) {
            let a = quant.search_exhaustive(q, 10, &mut scratch).unwrap();
            let b = quant.search_block_max(q, 10, &mut scratch).unwrap();
            assert_eq!(a, b);
        }
        // And resident postings shrink (8-bit vs 64-bit impacts).
        assert!(quant.postings_resident_bytes() < exact.postings_resident_bytes());
    }

    #[test]
    fn legacy_codec_round_trips_and_downgrades_quantized() {
        let dim = 16u32;
        let docs = banded_corpus(150, dim);
        let mut idx = InvertedIndex::new(dim as usize);
        for d in &docs {
            idx.insert(d.clone()).unwrap();
        }
        idx.remove(3).unwrap();
        let mut bytes = Vec::new();
        idx.encode_bin_legacy(&mut bytes);
        let mut r = codec::Reader::new(&bytes);
        let back = InvertedIndex::decode_bin_legacy(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.quantization(), QuantizationMode::Off);
        assert_blocks_match_reference(&back);
        let mut scratch = SearchScratch::new();
        for q in docs.iter().step_by(13) {
            let a = idx.search_exhaustive(q, 8, &mut scratch).unwrap();
            let b = back.search_exhaustive(q, 8, &mut scratch).unwrap();
            assert_eq!(a, b);
        }
        // A quantized index downgrades to exact-f64 *dequantized* weights:
        // the legacy stream has no quantization fields, so the round trip
        // preserves the stored (already lossy) values, not the originals.
        let mut quant = idx.clone();
        quant.set_quantization(QuantizationMode::Int8);
        let mut qbytes = Vec::new();
        quant.encode_bin_legacy(&mut qbytes);
        let mut qr = codec::Reader::new(&qbytes);
        let qback = InvertedIndex::decode_bin_legacy(&mut qr).unwrap();
        qr.finish().unwrap();
        assert_eq!(qback.quantization(), QuantizationMode::Off);
        for q in docs.iter().step_by(13) {
            let a = quant.search_exhaustive(q, 8, &mut scratch).unwrap();
            let b = qback.search_exhaustive(q, 8, &mut scratch).unwrap();
            assert_eq!(a, b, "dequantized downgrade must score identically");
        }
    }

    #[test]
    fn v6_codec_round_trips_both_modes() {
        let dim = 16u32;
        let docs = banded_corpus(150, dim);
        let mut idx = InvertedIndex::new(dim as usize);
        for d in &docs {
            idx.insert(d.clone()).unwrap();
        }
        idx.remove(5).unwrap();
        let mut scratch = SearchScratch::new();
        for mode in [QuantizationMode::Off, QuantizationMode::Int8] {
            let mut this = idx.clone();
            this.set_quantization(mode);
            let bytes = codec::encode_to_vec(&this);
            let back: InvertedIndex = codec::decode_from_slice(&bytes).unwrap();
            assert_eq!(back.quantization(), mode);
            assert_blocks_match_reference(&back);
            for q in docs.iter().step_by(13) {
                let a = this.search_exhaustive(q, 8, &mut scratch).unwrap();
                let b = back.search_exhaustive(q, 8, &mut scratch).unwrap();
                assert_eq!(a, b, "mode {mode:?}");
            }
        }
    }

    #[test]
    fn v6_codec_rejects_drifted_block_max() {
        let dim = 16u32;
        let docs = banded_corpus(200, dim);
        let mut idx = InvertedIndex::new(dim as usize);
        for d in &docs {
            idx.insert(d.clone()).unwrap();
        }
        idx.optimize();
        let mut bytes = codec::encode_to_vec(&idx);
        // `block_max` is the final field; flipping a low mantissa bit of
        // the last maximum desyncs it from the recomputed reference.
        let n = bytes.len();
        bytes[n - 8] ^= 1;
        assert!(
            codec::decode_from_slice::<InvertedIndex>(&bytes).is_err(),
            "drifted block maxima must not decode"
        );
    }
}
