//! Length-prefixed little-endian binary codec for the heavy persistence
//! sections.
//!
//! JSON is the right format for small, hand-inspectable sections (envelope
//! headers, daemon state), but re-parsing ~10⁵ floating-point literals on
//! every checkpoint load dominated restart time. This module defines a
//! deliberately boring wire format for the bulk payloads instead:
//!
//! * every integer is fixed-width little-endian (`u8`/`u32`/`u64`),
//! * every `f64` is its IEEE-754 bit pattern (`f64::to_bits`) little-endian,
//!   so values round-trip **bit-identically** (NaN payloads included),
//! * every variable-length field is prefixed with a `u64` element count,
//! * there is no padding, no alignment, and no varint encoding.
//!
//! Types opt in by implementing [`BinCodec`]. Decoders read through
//! [`Reader`], which bounds-checks every access and guards length prefixes
//! against the remaining input before allocating, so a corrupt or truncated
//! payload yields a [`CodecError`] rather than a panic or an OOM attempt.
//! Corruption *detection* is not this module's job — the envelope and WAL
//! layers checksum whole payloads with CRC32 before decoding starts — but
//! decoding must still be total on arbitrary bytes.

use std::fmt;

/// Decode-side failure: truncated input, an implausible length prefix, or
/// bytes that violate a type's structural invariants.
///
/// Encoding is infallible; only [`BinCodec::decode_bin`] produces these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(String);

impl CodecError {
    /// Build an error carrying a human-readable description of what the
    /// decoder expected and what it found.
    pub fn new(msg: impl Into<String>) -> Self {
        CodecError(msg.into())
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "binary codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// A type with a fixed little-endian binary wire encoding.
///
/// Implementations must guarantee `decode_bin(encode_bin(x)) == x` with
/// *bit-identical* floating-point fields, and `decode_bin` must validate the
/// same structural invariants the type's constructors enforce (sortedness,
/// index ranges, matching array lengths) so a decoded value is as trustworthy
/// as a constructed one.
pub trait BinCodec: Sized {
    /// Append this value's encoding to `out`.
    fn encode_bin(&self, out: &mut Vec<u8>);
    /// Decode one value from the reader, advancing it past the consumed
    /// bytes. Callers that expect the value to fill the input should follow
    /// up with [`Reader::finish`].
    fn decode_bin(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

/// Convenience: encode a value into a fresh buffer.
pub fn encode_to_vec<T: BinCodec>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode_bin(&mut out);
    out
}

/// Convenience: decode a value that must consume the entire input.
pub fn decode_from_slice<T: BinCodec>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut r = Reader::new(bytes);
    let value = T::decode_bin(&mut r)?;
    r.finish()?;
    Ok(value)
}

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its little-endian IEEE-754 bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Append a `usize` widened to `u64` little-endian.
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Append a `bool` as a single `0`/`1` byte.
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Append a string as a `u64` byte count followed by its UTF-8 bytes.
pub fn put_str(out: &mut Vec<u8>, v: &str) {
    put_usize(out, v.len());
    out.extend_from_slice(v.as_bytes());
}

/// Append an optional string as a presence byte, then the string if present.
pub fn put_opt_str(out: &mut Vec<u8>, v: Option<&str>) {
    match v {
        None => put_u8(out, 0),
        Some(s) => {
            put_u8(out, 1);
            put_str(out, s);
        }
    }
}

/// Append a `u32` slice as a `u64` count followed by the elements.
pub fn put_u32s(out: &mut Vec<u8>, vs: &[u32]) {
    put_usize(out, vs.len());
    for &v in vs {
        put_u32(out, v);
    }
}

/// Append a `u64` slice as a `u64` count followed by the elements.
pub fn put_u64s(out: &mut Vec<u8>, vs: &[u64]) {
    put_usize(out, vs.len());
    for &v in vs {
        put_u64(out, v);
    }
}

/// Append an `f64` slice as a `u64` count followed by the bit patterns.
pub fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    put_usize(out, vs.len());
    for &v in vs {
        put_f64(out, v);
    }
}

/// Append a `usize` slice as a `u64` count followed by `u64` elements.
pub fn put_usizes(out: &mut Vec<u8>, vs: &[usize]) {
    put_usize(out, vs.len());
    for &v in vs {
        put_usize(out, v);
    }
}

/// Append a `bool` slice as a `u64` count followed by one byte per element.
pub fn put_bools(out: &mut Vec<u8>, vs: &[bool]) {
    put_usize(out, vs.len());
    for &v in vs {
        put_bool(out, v);
    }
}

/// Append a raw byte slice as a `u64` count followed by the bytes.
pub fn put_bytes(out: &mut Vec<u8>, vs: &[u8]) {
    put_usize(out, vs.len());
    out.extend_from_slice(vs);
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Bounds-checked cursor over an encoded byte slice.
///
/// Every accessor either returns the decoded value and advances the cursor,
/// or returns a [`CodecError`] and leaves the reader unusable for that
/// decode attempt. Array reads check `count * elem_size` against the bytes
/// actually remaining before allocating, so a flipped length prefix cannot
/// request an absurd allocation.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Error unless the input was consumed exactly.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::new(format!(
                "{} trailing bytes after value",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if n > self.remaining() {
            return Err(CodecError::new(format!(
                "need {n} bytes but only {} remain",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Read an `f64` from its little-endian bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a `u64` and narrow it to `usize`.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CodecError::new(format!("length {v} exceeds usize")))
    }

    /// Read a `bool`; any byte other than `0`/`1` is an error.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CodecError::new(format!("invalid bool byte {b:#04x}"))),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let len = self.array_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CodecError::new(format!("invalid UTF-8 in string: {e}")))
    }

    /// Read an optional string written by [`put_opt_str`].
    pub fn get_opt_str(&mut self) -> Result<Option<String>, CodecError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_str()?)),
            b => Err(CodecError::new(format!("invalid option byte {b:#04x}"))),
        }
    }

    /// Read an element count and verify `count * elem_size` fits in the
    /// remaining input before the caller allocates for it.
    pub fn array_len(&mut self, elem_size: usize) -> Result<usize, CodecError> {
        let count = self.get_usize()?;
        let needed = count
            .checked_mul(elem_size)
            .ok_or_else(|| CodecError::new(format!("array length {count} overflows")))?;
        if needed > self.remaining() {
            return Err(CodecError::new(format!(
                "array claims {needed} bytes but only {} remain",
                self.remaining()
            )));
        }
        Ok(count)
    }

    /// Read a length-prefixed `u32` array.
    pub fn get_u32s(&mut self) -> Result<Vec<u32>, CodecError> {
        let count = self.array_len(4)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.get_u32()?);
        }
        Ok(out)
    }

    /// Read a length-prefixed `u64` array.
    pub fn get_u64s(&mut self) -> Result<Vec<u64>, CodecError> {
        let count = self.array_len(8)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.get_u64()?);
        }
        Ok(out)
    }

    /// Read a length-prefixed `f64` array (bit patterns, so NaNs survive).
    pub fn get_f64s(&mut self) -> Result<Vec<f64>, CodecError> {
        let count = self.array_len(8)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// Read a length-prefixed `usize` array (stored as `u64`s).
    pub fn get_usizes(&mut self) -> Result<Vec<usize>, CodecError> {
        let count = self.array_len(8)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.get_usize()?);
        }
        Ok(out)
    }

    /// Read a length-prefixed raw byte array written by [`put_bytes`].
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let count = self.array_len(1)?;
        Ok(self.take(count)?.to_vec())
    }

    /// Read a length-prefixed `bool` array (one byte per element).
    pub fn get_bools(&mut self) -> Result<Vec<bool>, CodecError> {
        let count = self.array_len(1)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.get_bool()?);
        }
        Ok(out)
    }
}

impl<T: BinCodec> BinCodec for Vec<T> {
    fn encode_bin(&self, out: &mut Vec<u8>) {
        put_usize(out, self.len());
        for item in self {
            item.encode_bin(out);
        }
    }

    fn decode_bin(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        // Elements are variable-size, so the tightest universal guard is one
        // byte per element; it still rejects length prefixes beyond the input.
        let count = r.array_len(1)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(T::decode_bin(r)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::from_bits(0x7FF8_0000_0000_1234)); // NaN payload
        put_bool(&mut buf, true);
        put_str(&mut buf, "héllo");
        put_opt_str(&mut buf, None);
        put_opt_str(&mut buf, Some("x"));

        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64().unwrap().to_bits(), 0x7FF8_0000_0000_1234);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_opt_str().unwrap(), None);
        assert_eq!(r.get_opt_str().unwrap().as_deref(), Some("x"));
        r.finish().unwrap();
    }

    #[test]
    fn arrays_round_trip() {
        let mut buf = Vec::new();
        put_u32s(&mut buf, &[1, 2, 3]);
        put_u64s(&mut buf, &[]);
        put_f64s(&mut buf, &[1.5, f64::INFINITY]);
        put_usizes(&mut buf, &[0, 42]);
        put_bools(&mut buf, &[true, false, true]);

        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u32s().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_u64s().unwrap(), Vec::<u64>::new());
        assert_eq!(r.get_f64s().unwrap(), vec![1.5, f64::INFINITY]);
        assert_eq!(r.get_usizes().unwrap(), vec![0, 42]);
        assert_eq!(r.get_bools().unwrap(), vec![true, false, true]);
        r.finish().unwrap();
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 7);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(r.get_u64().is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn absurd_length_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX); // claims ~1.8e19 elements
        let mut r = Reader::new(&buf);
        assert!(r.get_f64s().is_err());

        let mut buf = Vec::new();
        put_u64(&mut buf, 1 << 40); // plausible usize, impossible for input
        let mut r = Reader::new(&buf);
        assert!(r.get_u32s().is_err());
    }

    #[test]
    fn invalid_bool_and_option_bytes_are_rejected() {
        let mut r = Reader::new(&[2]);
        assert!(r.get_bool().is_err());
        let mut r = Reader::new(&[9]);
        assert!(r.get_opt_str().is_err());
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let buf = [0u8; 3];
        let mut r = Reader::new(&buf);
        r.get_u8().unwrap();
        assert!(r.finish().is_err());
        r.get_u8().unwrap();
        r.get_u8().unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn vec_of_bincodec_round_trips() {
        #[derive(Debug, PartialEq)]
        struct P(u32, f64);
        impl BinCodec for P {
            fn encode_bin(&self, out: &mut Vec<u8>) {
                put_u32(out, self.0);
                put_f64(out, self.1);
            }
            fn decode_bin(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                Ok(P(r.get_u32()?, r.get_f64()?))
            }
        }
        let v = vec![P(1, 2.0), P(3, -4.5)];
        let bytes = encode_to_vec(&v);
        let back: Vec<P> = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, v);
    }
}
