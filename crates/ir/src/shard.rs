//! Sharded search: a deterministic doc→shard router, a [`Shard`] unit
//! that owns its own slice of the posting store, and a top-k merge that
//! is bit-identical to searching one flat index over the same corpus.
//!
//! A document's cosine score is a pure per-document function of its own
//! postings and the query — it never depends on which other documents
//! share the index. Splitting a corpus across shards therefore changes
//! *where* each document is scored but not *what* it scores: every
//! member of the flat top-k is also in its own shard's top-k (a shard
//! holds a subset of the flat competitors), so concatenating the
//! per-shard top-k lists and re-ranking by the flat comparator — score
//! descending, then global doc id ascending — reproduces the flat
//! result exactly, bit for bit. [`merge_topk`] implements that merge;
//! the shard-local WAND term bounds (and the block maxima the block-max
//! path refines them with) are just the flat bounds restricted to the
//! shard's postings, so pruning stays sound per shard.

use std::cmp::Ordering;

use crate::{CsrMatrix, DocId, InvertedIndex, IrError, SearchHit, SearchScratch, SparseVec};

/// Deterministic round-robin doc→shard router.
///
/// Global doc id `d` lives in shard `d % num_shards` at local id
/// `d / num_shards`. The mapping is invertible and stable under
/// sequential id assignment: appending global ids `0, 1, 2, …` appends
/// local ids `0, 1, 2, …` within every shard, so shard-local indexes
/// assign exactly the local ids the router predicts.
///
/// # Examples
///
/// ```
/// use fmeter_ir::ShardRouter;
///
/// let router = ShardRouter::new(3);
/// assert_eq!(router.shard_of(7), 1);
/// assert_eq!(router.local_of(7), 2);
/// assert_eq!(router.global_of(1, 2), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    num_shards: usize,
}

impl ShardRouter {
    /// Creates a router over `num_shards` shards (clamped to at least 1).
    pub fn new(num_shards: usize) -> Self {
        ShardRouter {
            num_shards: num_shards.max(1),
        }
    }

    /// Number of shards this router distributes over.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard holding global doc `doc`.
    pub fn shard_of(&self, doc: DocId) -> usize {
        doc % self.num_shards
    }

    /// The shard-local id of global doc `doc`.
    pub fn local_of(&self, doc: DocId) -> DocId {
        doc / self.num_shards
    }

    /// The global doc id of `local` within `shard` (inverse of
    /// [`shard_of`](Self::shard_of)/[`local_of`](Self::local_of)).
    pub fn global_of(&self, shard: usize, local: DocId) -> DocId {
        local * self.num_shards + shard
    }
}

/// One shard of a sharded corpus: its own [`InvertedIndex`] (postings
/// and WAND max-impact bounds over shard-local ids) plus the shard's
/// vectors packed in a [`CsrMatrix`] (so a snapshot consumer can replay
/// or re-index the shard without reaching back into the writer).
///
/// All public entry points speak *global* doc ids; the shard translates
/// through its [`ShardRouter`] internally and rejects misrouted ids.
#[derive(Debug, Clone)]
pub struct Shard {
    shard: usize,
    router: ShardRouter,
    index: InvertedIndex,
    vectors: CsrMatrix,
}

impl Shard {
    /// Creates the empty shard `shard` of a `router.num_shards()`-way
    /// layout over a `dim`-term space.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range for the router.
    pub fn new(shard: usize, router: ShardRouter, dim: usize) -> Self {
        assert!(
            shard < router.num_shards(),
            "shard {shard} out of range for {} shards",
            router.num_shards()
        );
        Shard {
            shard,
            router,
            index: InvertedIndex::new(dim),
            vectors: CsrMatrix::default(),
        }
    }

    /// This shard's position in the layout.
    pub fn shard_id(&self) -> usize {
        self.shard
    }

    /// The router that maps global ids onto this layout.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Dimensionality of the term space.
    pub fn dim(&self) -> usize {
        self.index.dim()
    }

    /// Number of local id slots assigned (live + tombstoned).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns `true` when no document was ever routed here.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of live documents in this shard.
    pub fn live_len(&self) -> usize {
        self.index.live_len()
    }

    /// The shard-local inverted index (postings + WAND bounds).
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The shard's vectors, packed row-per-local-id. Tombstoned locals
    /// keep their last row — check [`is_live`](Self::is_live).
    pub fn vectors(&self) -> &CsrMatrix {
        &self.vectors
    }

    /// Returns `true` when global doc `doc` is routed here and live.
    pub fn is_live(&self, doc: DocId) -> bool {
        self.router.shard_of(doc) == self.shard && self.index.is_live(self.router.local_of(doc))
    }

    /// Indexes `vector` as global doc `global`, which must be the next
    /// id the router assigns to this shard (sequential global inserts
    /// keep every shard's local id space dense automatically).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DocNotLive`] when `global` is misrouted (wrong
    /// shard) or out of order, and [`IrError::DimensionMismatch`] on a
    /// vector dimension mismatch.
    pub fn insert(&mut self, global: DocId, vector: SparseVec) -> Result<DocId, IrError> {
        if vector.dim() != self.index.dim() {
            return Err(IrError::DimensionMismatch {
                left: self.index.dim(),
                right: vector.dim(),
            });
        }
        if self.router.shard_of(global) != self.shard
            || self.router.local_of(global) != self.index.len()
        {
            return Err(IrError::DocNotLive(global));
        }
        self.vectors
            .push_row(&vector)
            .expect("dimension checked above");
        let local = self.index.insert(vector).expect("dimension checked above");
        debug_assert_eq!(local, self.router.local_of(global));
        Ok(global)
    }

    /// Tombstones global doc `global`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DocNotLive`] when `global` is misrouted, never
    /// inserted, or already removed.
    pub fn remove(&mut self, global: DocId) -> Result<(), IrError> {
        if self.router.shard_of(global) != self.shard {
            return Err(IrError::DocNotLive(global));
        }
        self.index.remove(self.router.local_of(global))
    }

    /// Fully compacts this shard's postings (see
    /// [`InvertedIndex::optimize`]).
    pub fn optimize(&mut self) {
        self.index.optimize();
    }

    /// Switches this shard's flat posting weights between exact `f64`
    /// and 8-bit quantized storage (see
    /// [`InvertedIndex::set_quantization`]).
    ///
    /// Quantization grids are shard-local: each shard fits its per-term
    /// scale/offset to *its own* postings, so a shard's grid is at least
    /// as tight as the flat index's (a subset's min/max range can only
    /// shrink) and the `scale / 2` error bound still holds per posting.
    /// Within one stored corpus the merge contract is unchanged — every
    /// search path scores the same dequantized stored weights, so
    /// [`merge_topk`] over uniformly quantized shards reproduces their
    /// own exhaustive ranking bit for bit.
    pub fn set_quantization(&mut self, mode: crate::QuantizationMode) {
        self.index.set_quantization(mode);
    }

    /// Rewrites this shard's postings (and stored vectors) from the
    /// given live `(global doc, vector)` pairs, ascending by global id —
    /// the per-shard leg of an idf refit (see
    /// [`InvertedIndex::rebuild_postings`]).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DocNotLive`] for misrouted, dead, or
    /// disordered ids and [`IrError::DimensionMismatch`] on a vector
    /// dimension mismatch; the shard is unchanged on error.
    pub fn rebuild_postings<'a, I>(&mut self, live: I) -> Result<(), IrError>
    where
        I: IntoIterator<Item = (DocId, &'a SparseVec)>,
    {
        let mut pairs: Vec<(DocId, &SparseVec)> = Vec::new();
        for (global, vector) in live {
            if self.router.shard_of(global) != self.shard {
                return Err(IrError::DocNotLive(global));
            }
            pairs.push((self.router.local_of(global), vector));
        }
        self.index
            .rebuild_postings(pairs.iter().map(|&(l, v)| (l, v)))?;
        // Refresh the packed vector rows the rebuild re-weighted; dead
        // locals keep their last row (same contract as the index, which
        // keeps their tombstones).
        let mut rows: Vec<SparseVec> = (0..self.vectors.len())
            .map(|l| self.vectors.row_to_sparse(l))
            .collect();
        for &(l, v) in &pairs {
            rows[l] = v.clone();
        }
        self.vectors = CsrMatrix::from_rows(&rows).expect("rows share the shard dimension");
        Ok(())
    }

    /// Finds this shard's `k` best hits for `query`, reported under
    /// *global* doc ids. Scores are bit-identical to what a flat index
    /// over the whole corpus computes for the same documents.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimensionMismatch`] when the query dimension
    /// differs from the shard dimension.
    pub fn search_with(
        &self,
        query: &SparseVec,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> Result<Vec<SearchHit>, IrError> {
        let mut hits = self.index.search_with(query, k, scratch)?;
        for h in &mut hits {
            h.doc = self.router.global_of(self.shard, h.doc);
        }
        Ok(hits)
    }
}

/// Merges per-shard top-k hit lists (global doc ids) into the global
/// top-k, bit-identical to a flat index's top-k over the union corpus
/// given each shard's own top-k for the same `k`.
///
/// Membership and presentation use different tie rules, copied from
/// the flat heap: the top-k *selection* order is score descending then
/// doc id **descending** (the flat heap evicts the lowest-id entry at a
/// tied k-boundary, so the highest ids survive), while the returned
/// list is *presented* score descending then doc id **ascending** (the
/// flat final sort).
pub fn merge_topk<I>(per_shard: I, k: usize) -> Vec<SearchHit>
where
    I: IntoIterator<Item = Vec<SearchHit>>,
{
    let mut all: Vec<SearchHit> = per_shard.into_iter().flatten().collect();
    all.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(Ordering::Equal)
            .then(b.doc.cmp(&a.doc))
    });
    all.truncate(k);
    all.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(Ordering::Equal)
            .then(a.doc.cmp(&b.doc))
    });
    all
}

/// Searches every shard sequentially and merges — the single-threaded
/// reference the concurrent fan-out (and the tests) compare against.
///
/// # Errors
///
/// Returns [`IrError::DimensionMismatch`] when the query dimension
/// differs from the shards' dimension.
pub fn search_sharded(
    shards: &[Shard],
    query: &SparseVec,
    k: usize,
    scratch: &mut SearchScratch,
) -> Result<Vec<SearchHit>, IrError> {
    let mut per_shard = Vec::with_capacity(shards.len());
    for shard in shards {
        per_shard.push(shard.search_with(query, k, scratch)?);
    }
    Ok(merge_topk(per_shard, k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(n: usize, dim: u32) -> Vec<SparseVec> {
        (0..n)
            .map(|i| {
                let base = (i as u32 * 5) % (dim - 3);
                SparseVec::from_pairs(
                    dim as usize,
                    [
                        (base, 1.0 + (i % 9) as f64),
                        (base + 1, 0.5 + (i % 4) as f64),
                        (dim - 1, 0.25),
                    ],
                )
                .unwrap()
            })
            .collect()
    }

    fn build_sharded(docs: &[SparseVec], num_shards: usize, dim: usize) -> Vec<Shard> {
        let router = ShardRouter::new(num_shards);
        let mut shards: Vec<Shard> = (0..num_shards)
            .map(|s| Shard::new(s, router, dim))
            .collect();
        for (d, v) in docs.iter().enumerate() {
            shards[router.shard_of(d)].insert(d, v.clone()).unwrap();
        }
        shards
    }

    #[test]
    fn router_is_invertible_and_dense() {
        for num_shards in 1..=5 {
            let router = ShardRouter::new(num_shards);
            let mut next_local = vec![0usize; num_shards];
            for doc in 0..97 {
                let s = router.shard_of(doc);
                let l = router.local_of(doc);
                assert_eq!(router.global_of(s, l), doc);
                // Sequential global ids assign sequential local ids.
                assert_eq!(l, next_local[s]);
                next_local[s] += 1;
            }
        }
        assert_eq!(ShardRouter::new(0).num_shards(), 1, "clamped to 1");
    }

    #[test]
    fn sharded_search_is_bit_identical_to_flat() {
        let dim = 32u32;
        let docs = corpus(300, dim);
        let mut flat = InvertedIndex::new(dim as usize);
        for d in &docs {
            flat.insert(d.clone()).unwrap();
        }
        let mut scratch = SearchScratch::new();
        for num_shards in [1usize, 2, 3, 7] {
            let shards = build_sharded(&docs, num_shards, dim as usize);
            for k in [1usize, 5, 300] {
                for qseed in 0..6usize {
                    let q = &docs[qseed * 37 % docs.len()];
                    let expected = flat.search_with(q, k, &mut scratch).unwrap();
                    let got = search_sharded(&shards, q, k, &mut scratch).unwrap();
                    assert_eq!(got, expected, "shards={num_shards} k={k} qseed={qseed}");
                }
            }
        }
    }

    #[test]
    fn sharded_search_matches_flat_after_removals() {
        let dim = 24u32;
        let docs = corpus(120, dim);
        let mut flat = InvertedIndex::new(dim as usize);
        for d in &docs {
            flat.insert(d.clone()).unwrap();
        }
        let mut shards = build_sharded(&docs, 4, dim as usize);
        for d in (0..120).step_by(3) {
            flat.remove(d).unwrap();
            shards[d % 4].remove(d).unwrap();
        }
        let mut scratch = SearchScratch::new();
        for qseed in 0..5usize {
            let q = &docs[qseed * 23 % docs.len()];
            let expected = flat.search_with(q, 10, &mut scratch).unwrap();
            let got = search_sharded(&shards, q, 10, &mut scratch).unwrap();
            assert_eq!(got, expected, "qseed={qseed}");
        }
    }

    #[test]
    fn ties_break_on_global_doc_id_across_shards() {
        // Identical vectors land in different shards; at a tied
        // k-boundary the flat heap keeps the highest doc ids (it evicts
        // the lowest-id tie) and presents them ascending — the merge
        // must reproduce both rules exactly.
        let dim = 4usize;
        let v = SparseVec::from_pairs(dim, [(0, 2.0)]).unwrap();
        let docs = vec![v.clone(); 6];
        let mut flat = InvertedIndex::new(dim);
        for d in &docs {
            flat.insert(d.clone()).unwrap();
        }
        let shards = build_sharded(&docs, 3, dim);
        let mut scratch = SearchScratch::new();
        let expected = flat.search_with(&v, 4, &mut scratch).unwrap();
        let hits = search_sharded(&shards, &v, 4, &mut scratch).unwrap();
        assert_eq!(hits, expected);
        let ids: Vec<DocId> = hits.iter().map(|h| h.doc).collect();
        assert_eq!(ids, [2, 3, 4, 5]);
    }

    #[test]
    fn insert_rejects_misrouted_and_disordered_ids() {
        let router = ShardRouter::new(2);
        let mut shard = Shard::new(0, router, 4);
        let v = SparseVec::from_pairs(4, [(0, 1.0)]).unwrap();
        // Doc 1 belongs to shard 1.
        assert_eq!(shard.insert(1, v.clone()), Err(IrError::DocNotLive(1)));
        // Doc 2 is not the next local slot (doc 0 first).
        assert_eq!(shard.insert(2, v.clone()), Err(IrError::DocNotLive(2)));
        shard.insert(0, v.clone()).unwrap();
        assert_eq!(shard.insert(2, v.clone()).unwrap(), 2);
        assert!(shard.insert(0, v.clone()).is_err(), "no re-insert");
        assert!(shard.insert(4, SparseVec::zeros(5)).is_err(), "wrong dim");
        assert_eq!(shard.len(), 2);
        assert_eq!(shard.live_len(), 2);
        assert!(shard.is_live(0) && shard.is_live(2));
        assert!(!shard.is_live(1), "doc 1 is not even routed here");
    }

    #[test]
    fn rebuild_postings_routes_and_refreshes_vectors() {
        let dim = 8usize;
        let docs = corpus(20, dim as u32);
        let mut shards = build_sharded(&docs, 2, dim);
        shards[0].remove(4).unwrap();
        // Rebuild shard 0 from scaled survivors, as a refit would hand
        // down re-weighted vectors.
        let scaled: Vec<(DocId, SparseVec)> = (0..20)
            .filter(|d| d % 2 == 0 && *d != 4)
            .map(|d| (d, docs[d].scaled(3.0)))
            .collect();
        shards[0]
            .rebuild_postings(scaled.iter().map(|(d, v)| (*d, v)))
            .unwrap();
        // A misrouted id is rejected and leaves the shard intact.
        let v = docs[1].clone();
        assert!(shards[0].rebuild_postings([(1usize, &v)]).is_err());
        // The flat reference rebuilds from the very same vectors (bitwise
        // identity demands identical inputs — normalising a scaled copy
        // is only mathematically, not bitwise, a no-op).
        let mut flat = InvertedIndex::new(dim);
        for v in &docs {
            flat.insert(v.clone()).unwrap();
        }
        flat.remove(4).unwrap();
        let flat_live: Vec<(DocId, SparseVec)> = (0..20)
            .filter(|&d| d != 4)
            .map(|d| {
                if d % 2 == 0 {
                    (d, docs[d].scaled(3.0))
                } else {
                    (d, docs[d].clone())
                }
            })
            .collect();
        flat.rebuild_postings(flat_live.iter().map(|(d, v)| (*d, v)))
            .unwrap();
        let mut scratch = SearchScratch::new();
        for q in docs.iter().take(5) {
            let expected = flat.search_with(q, 8, &mut scratch).unwrap();
            let got = search_sharded(&shards, q, 8, &mut scratch).unwrap();
            assert_eq!(got, expected);
        }
        // The packed vectors mirror the rebuilt weights.
        let local_of_6 = shards[0].router().local_of(6);
        assert_eq!(
            shards[0].vectors().row_to_sparse(local_of_6),
            docs[6].scaled(3.0)
        );
    }

    #[test]
    fn sharded_block_max_is_bit_identical_to_flat() {
        // Per-shard explicit block-max search merged by merge_topk must
        // reproduce the flat exhaustive ranking bit for bit, including
        // through tombstones.
        let dim = 32u32;
        let docs = corpus(400, dim);
        let mut flat = InvertedIndex::new(dim as usize);
        for d in &docs {
            flat.insert(d.clone()).unwrap();
        }
        let mut shards = build_sharded(&docs, 3, dim as usize);
        for s in &mut shards {
            s.optimize();
        }
        for d in (0..400).step_by(7) {
            flat.remove(d).unwrap();
            shards[d % 3].remove(d).unwrap();
        }
        let mut scratch = SearchScratch::new();
        for qseed in 0..6usize {
            let q = &docs[qseed * 37 % docs.len()];
            let expected = flat.search_exhaustive(q, 10, &mut scratch).unwrap();
            let per_shard: Vec<Vec<SearchHit>> = shards
                .iter()
                .map(|s| {
                    let mut hits = s.index().search_block_max(q, 10, &mut scratch).unwrap();
                    for h in &mut hits {
                        h.doc = s.router().global_of(s.shard_id(), h.doc);
                    }
                    hits
                })
                .collect();
            let got = merge_topk(per_shard, 10);
            assert_eq!(got, expected, "qseed={qseed}");
        }
    }

    #[test]
    fn quantized_shards_merge_their_own_exhaustive_ranking() {
        // Quantization grids are shard-local, so the oracle is each
        // shard's own exhaustive scan over its dequantized weights —
        // search_with must match it bitwise after the merge, and the
        // quantized ranking must stay close to the exact one.
        let dim = 32u32;
        let docs = corpus(400, dim);
        let mut shards = build_sharded(&docs, 3, dim as usize);
        for s in &mut shards {
            s.optimize();
            s.set_quantization(crate::QuantizationMode::Int8);
            assert_eq!(s.index().quantization(), crate::QuantizationMode::Int8);
        }
        let mut exact_shards = build_sharded(&docs, 3, dim as usize);
        for s in &mut exact_shards {
            s.optimize();
        }
        let mut scratch = SearchScratch::new();
        for qseed in 0..6usize {
            let q = &docs[qseed * 37 % docs.len()];
            let got = search_sharded(&shards, q, 10, &mut scratch).unwrap();
            let oracle: Vec<Vec<SearchHit>> = shards
                .iter()
                .map(|s| {
                    let mut hits = s.index().search_exhaustive(q, 10, &mut scratch).unwrap();
                    for h in &mut hits {
                        h.doc = s.router().global_of(s.shard_id(), h.doc);
                    }
                    hits
                })
                .collect();
            assert_eq!(got, merge_topk(oracle, 10), "qseed={qseed}");
            // Recall vs the exact shards: the 8-bit grid should barely
            // move a 10-deep ranking on this corpus.
            let exact = search_sharded(&exact_shards, q, 10, &mut scratch).unwrap();
            let exact_ids: Vec<DocId> = exact.iter().map(|h| h.doc).collect();
            let hit = got.iter().filter(|h| exact_ids.contains(&h.doc)).count();
            assert!(hit >= 9, "qseed={qseed}: recall {hit}/10");
        }
    }

    #[test]
    fn merge_topk_truncates_and_handles_empty() {
        assert!(merge_topk(Vec::<Vec<SearchHit>>::new(), 5).is_empty());
        let merged = merge_topk(
            vec![
                vec![SearchHit { doc: 2, score: 0.5 }],
                vec![
                    SearchHit { doc: 1, score: 0.9 },
                    SearchHit { doc: 3, score: 0.1 },
                ],
            ],
            2,
        );
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].doc, 1);
        assert_eq!(merged[1].doc, 2);
    }
}
