//! Property-based tests for the tracing data structures.

use fmeter_kernel_sim::{CpuId, FunctionId, FunctionTracer, Nanos, Subsystem, SymbolTable};
use fmeter_trace::{CounterSnapshot, FmeterTracer, FtraceTracer, RingBuffer};
use proptest::prelude::*;

fn symbols(n: usize) -> SymbolTable {
    let mut t = SymbolTable::new();
    for i in 0..n {
        t.push(
            format!("f{i}"),
            0xffff_ffff_8100_0000 + i as u64 * 0x40,
            Subsystem::Util,
            0,
            Nanos(5),
        );
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ring_buffer_is_fifo_under_capacity(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 1..32),
    ) {
        // Capacity generously above total payload: nothing may be lost.
        let total: usize = records.iter().map(|r| r.len() + 4).sum();
        let mut rb = RingBuffer::new(total + 8);
        for r in &records {
            rb.push(r);
        }
        prop_assert_eq!(rb.overwritten(), 0);
        let drained = rb.drain();
        prop_assert_eq!(drained, records);
    }

    #[test]
    fn ring_buffer_conserves_records_under_overflow(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 1..64),
        capacity in 40usize..160,
    ) {
        let mut rb = RingBuffer::new(capacity);
        let mut pushed = 0u64;
        for r in &records {
            if r.len() + 4 <= capacity {
                rb.push(r);
                pushed += 1;
            }
        }
        let kept = rb.len() as u64;
        prop_assert_eq!(rb.overwritten() + kept, pushed);
        // Survivors are exactly the newest `kept` eligible records.
        let eligible: Vec<&Vec<u8>> =
            records.iter().filter(|r| r.len() + 4 <= capacity).collect();
        let expected: Vec<Vec<u8>> = eligible
            .iter()
            .skip(eligible.len() - kept as usize)
            .map(|r| (*r).clone())
            .collect();
        prop_assert_eq!(rb.drain(), expected);
    }

    #[test]
    fn interleaved_push_pop_preserves_order(
        script in prop::collection::vec((any::<bool>(), any::<u8>()), 1..200),
    ) {
        let mut rb = RingBuffer::new(1 << 12);
        let mut model: std::collections::VecDeque<Vec<u8>> = Default::default();
        let mut next = 0u8;
        for (is_push, len) in script {
            if is_push {
                let record = vec![next; (len % 16) as usize];
                next = next.wrapping_add(1);
                rb.push(&record);
                model.push_back(record);
                if rb.overwritten() > 0 {
                    // Keep the model in the no-overflow regime.
                    return Ok(());
                }
            } else {
                prop_assert_eq!(rb.pop(), model.pop_front());
            }
        }
        prop_assert_eq!(rb.len(), model.len());
    }

    #[test]
    fn fmeter_counts_match_a_simple_model(
        calls in prop::collection::vec((0usize..4, 0u32..64), 0..300),
    ) {
        let table = symbols(64);
        let tracer = FmeterTracer::with_cpus(&table, 4);
        let mut model = vec![0u64; 64];
        for &(cpu, f) in &calls {
            tracer.on_function_call(CpuId(cpu), FunctionId(f));
            model[f as usize] += 1;
        }
        let snapshot = tracer.snapshot(Nanos(0));
        prop_assert_eq!(snapshot.counts(), &model[..]);
        // Per-function reads agree with the snapshot.
        for f in 0..64u32 {
            prop_assert_eq!(tracer.count(FunctionId(f)), model[f as usize]);
        }
    }

    #[test]
    fn snapshot_deltas_compose(
        phase1 in prop::collection::vec(0u32..32, 0..100),
        phase2 in prop::collection::vec(0u32..32, 0..100),
    ) {
        let table = symbols(32);
        let tracer = FmeterTracer::with_cpus(&table, 1);
        let s0 = tracer.snapshot(Nanos(0));
        for &f in &phase1 {
            tracer.on_function_call(CpuId(0), FunctionId(f));
        }
        let s1 = tracer.snapshot(Nanos(1));
        for &f in &phase2 {
            tracer.on_function_call(CpuId(0), FunctionId(f));
        }
        let s2 = tracer.snapshot(Nanos(2));
        // delta(s0, s1) + delta(s1, s2) == delta(s0, s2)
        let d01 = s0.delta(&s1);
        let d12 = s1.delta(&s2);
        let d02 = s0.delta(&s2);
        let summed: Vec<u64> = d01.iter().zip(&d12).map(|(a, b)| a + b).collect();
        prop_assert_eq!(summed, d02);
        prop_assert_eq!(s0.interval(&s2), Nanos(2));
    }

    #[test]
    fn ftrace_events_decode_to_what_was_recorded(
        calls in prop::collection::vec((0usize..2, 0u32..16), 1..120),
    ) {
        let table = symbols(16);
        let tracer = FtraceTracer::new(&table, 2, 1 << 16);
        for &(cpu, f) in &calls {
            tracer.on_function_call(CpuId(cpu), FunctionId(f));
        }
        prop_assert_eq!(tracer.total_overwritten(), 0);
        let events = tracer.drain_all();
        prop_assert_eq!(events.len(), calls.len());
        // Timestamps are unique and complete.
        let mut stamps: Vec<u64> = events.iter().map(|e| e.timestamp).collect();
        stamps.sort_unstable();
        prop_assert_eq!(stamps, (0..calls.len() as u64).collect::<Vec<_>>());
        // Per-function multiset matches.
        let mut expected = vec![0u64; 16];
        for &(_, f) in &calls {
            expected[f as usize] += 1;
        }
        let mut observed = vec![0u64; 16];
        for e in &events {
            let idx = ((e.ip - 0xffff_ffff_8100_0000) / 0x40) as usize;
            observed[idx] += 1;
        }
        prop_assert_eq!(observed, expected);
    }

    #[test]
    fn counter_snapshot_delta_never_underflows(
        a in prop::collection::vec(0u64..1000, 1..32),
        b in prop::collection::vec(0u64..1000, 1..32),
    ) {
        let n = a.len().min(b.len());
        let s1 = CounterSnapshot::new(a[..n].to_vec(), Nanos(0));
        let s2 = CounterSnapshot::new(b[..n].to_vec(), Nanos(1));
        for &d in &s1.delta(&s2) {
            prop_assert!(d <= 1000);
        }
    }
}
