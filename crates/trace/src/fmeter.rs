use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fmeter_kernel_sim::{CpuId, Debugfs, FunctionId, FunctionTracer, Nanos, SymbolTable};

use crate::{CounterSnapshot, FMETER_CALL_OVERHEAD};

/// Counter slots per per-CPU page: a 4 KiB page of 8-byte integers, as in
/// the paper's Figure 3.
pub(crate) const SLOTS_PER_PAGE: usize = 4096 / 8;

/// One per-CPU index: "a series of free pages, and each page contains an
/// array of slots".
#[derive(Debug)]
struct PerCpuIndex {
    pages: Vec<Box<[AtomicU64]>>,
}

impl PerCpuIndex {
    fn new(num_functions: usize) -> Self {
        let num_pages = num_functions.div_ceil(SLOTS_PER_PAGE).max(1);
        let pages = (0..num_pages)
            .map(|_| {
                (0..SLOTS_PER_PAGE)
                    .map(|_| AtomicU64::new(0))
                    .collect::<Vec<_>>()
                    .into_boxed_slice()
            })
            .collect();
        PerCpuIndex { pages }
    }
}

/// The per-function stub: the two indices the specialised `mcount` routine
/// embeds into each function's personalised counting stub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Stub {
    page: u32,
    slot: u32,
}

/// The Fmeter tracer: per-CPU pages of invocation counters addressed
/// through per-function stubs (paper §3, Figure 3).
///
/// Recording a call is: disable preemption (modelled in the simulated
/// overhead — it is a plain integer bump on the task's thread info, cheaper
/// than any atomic RMW under contention), follow the stub's two indices,
/// increment the slot, re-enable preemption. Because each CPU owns its
/// index, increments never contend; totals are aggregated at snapshot
/// time.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use fmeter_kernel_sim::{CpuId, Kernel, KernelConfig, KernelOp};
/// use fmeter_trace::FmeterTracer;
///
/// let mut kernel = Kernel::new(KernelConfig::default())?;
/// let fmeter = Arc::new(FmeterTracer::new(kernel.symbols()));
/// kernel.set_tracer(fmeter.clone());
///
/// let stats = kernel.run_op(CpuId(0), KernelOp::Read { bytes: 4096 })?;
/// assert_eq!(fmeter.snapshot(kernel.now()).total(), stats.calls);
/// # Ok::<(), fmeter_kernel_sim::KernelError>(())
/// ```
#[derive(Debug)]
pub struct FmeterTracer {
    stubs: Vec<Stub>,
    per_cpu: Vec<PerCpuIndex>,
    addresses: Vec<u64>,
    enabled: AtomicU64,
}

impl FmeterTracer {
    /// Default CPU count used when the caller does not specify one.
    const DEFAULT_CPUS: usize = 16;

    /// Builds the tracer for a kernel's symbol table with the default
    /// 16-CPU layout (the paper's R710 manages 16 logical processors).
    pub fn new(symbols: &SymbolTable) -> Self {
        Self::with_cpus(symbols, Self::DEFAULT_CPUS)
    }

    /// Builds the tracer with an explicit per-CPU index count.
    ///
    /// # Panics
    ///
    /// Panics if `num_cpus` is zero.
    pub fn with_cpus(symbols: &SymbolTable, num_cpus: usize) -> Self {
        assert!(num_cpus > 0, "need at least one CPU");
        let n = symbols.len();
        // Boot-time mapping: function id -> (page, slot), exactly the
        // mapping the specialised mcount bakes into each stub.
        let stubs = (0..n)
            .map(|i| Stub {
                page: (i / SLOTS_PER_PAGE) as u32,
                slot: (i % SLOTS_PER_PAGE) as u32,
            })
            .collect();
        FmeterTracer {
            stubs,
            per_cpu: (0..num_cpus).map(|_| PerCpuIndex::new(n)).collect(),
            addresses: symbols.iter().map(|f| f.address).collect(),
            enabled: AtomicU64::new(1),
        }
    }

    /// Number of instrumented functions.
    pub fn num_functions(&self) -> usize {
        self.stubs.len()
    }

    /// Number of per-CPU indices.
    pub fn num_cpus(&self) -> usize {
        self.per_cpu.len()
    }

    /// Enables or disables counting (the "flip of a switch" the paper
    /// promises for production machines). Disabled tracing records
    /// nothing; the stub still exists, so we keep charging its (tiny)
    /// overhead only while enabled.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled as u64, Ordering::Relaxed);
    }

    /// Whether counting is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed) != 0
    }

    /// Count for one function on one CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` or `function` is out of range.
    pub fn count_on_cpu(&self, cpu: CpuId, function: FunctionId) -> u64 {
        let stub = self.stubs[function.index()];
        self.per_cpu[cpu.0].pages[stub.page as usize][stub.slot as usize].load(Ordering::Relaxed)
    }

    /// Aggregated (all-CPU) count for one function.
    pub fn count(&self, function: FunctionId) -> u64 {
        let stub = self.stubs[function.index()];
        self.per_cpu
            .iter()
            .map(|idx| idx.pages[stub.page as usize][stub.slot as usize].load(Ordering::Relaxed))
            .sum()
    }

    /// Snapshot of all aggregated counters at simulated time `now` — what
    /// the user-space daemon reads through debugfs.
    pub fn snapshot(&self, now: Nanos) -> CounterSnapshot {
        let mut counts = vec![0u64; self.stubs.len()];
        for idx in &self.per_cpu {
            for (i, count) in counts.iter_mut().enumerate() {
                let stub = self.stubs[i];
                *count += idx.pages[stub.page as usize][stub.slot as usize].load(Ordering::Relaxed);
            }
        }
        CounterSnapshot::new(counts, now)
    }

    /// Resets every counter on every CPU.
    pub fn reset(&self) {
        for idx in &self.per_cpu {
            for page in &idx.pages {
                for slot in page.iter() {
                    slot.store(0, Ordering::Relaxed);
                }
            }
        }
    }

    /// Renders the debugfs export: one `"<hex address> <count>"` line per
    /// function, in address order. Addresses identify functions
    /// unambiguously (names may be duplicated by `static`s), exactly as
    /// the paper argues.
    pub fn render_debugfs(&self) -> String {
        let mut out = String::with_capacity(self.stubs.len() * 24);
        for (i, &addr) in self.addresses.iter().enumerate() {
            let count = self.count(FunctionId(i as u32));
            out.push_str(&format!("{addr:#018x} {count}\n"));
        }
        out
    }

    /// Registers this tracer's counter file in the simulated debugfs at
    /// `tracing/fmeter/counters`.
    pub fn register_debugfs(self: &Arc<Self>, debugfs: &mut Debugfs) {
        let me = Arc::clone(self);
        debugfs.register(
            "tracing/fmeter/counters",
            Arc::new(move || me.render_debugfs()),
        );
    }
}

impl FunctionTracer for FmeterTracer {
    fn on_function_call(&self, cpu: CpuId, function: FunctionId) {
        if !self.is_enabled() {
            return;
        }
        // The stub body: preempt_disable();  (modelled — a plain int bump)
        // follow (page, slot); increment; preempt_enable().
        let stub = self.stubs[function.index()];
        let cpu_index = &self.per_cpu[cpu.0 % self.per_cpu.len()];
        cpu_index.pages[stub.page as usize][stub.slot as usize].fetch_add(1, Ordering::Relaxed);
    }

    fn overhead(&self) -> Nanos {
        if self.is_enabled() {
            FMETER_CALL_OVERHEAD
        } else {
            Nanos::ZERO
        }
    }

    fn name(&self) -> &str {
        "fmeter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmeter_kernel_sim::{KernelImageBuilder, Subsystem};

    fn symbols() -> SymbolTable {
        let mut t = SymbolTable::new();
        for i in 0..(SLOTS_PER_PAGE + 3) {
            t.push(
                format!("f{i}"),
                0xffff_ffff_8100_0000 + i as u64 * 0x40,
                Subsystem::Util,
                0,
                Nanos(5),
            );
        }
        t
    }

    #[test]
    fn counts_span_pages() {
        let t = symbols();
        let tracer = FmeterTracer::with_cpus(&t, 2);
        // Function in page 0 and one in page 1.
        let first = FunctionId(0);
        let second = FunctionId(SLOTS_PER_PAGE as u32 + 1);
        tracer.on_function_call(CpuId(0), first);
        tracer.on_function_call(CpuId(1), first);
        tracer.on_function_call(CpuId(0), second);
        assert_eq!(tracer.count(first), 2);
        assert_eq!(tracer.count(second), 1);
        assert_eq!(tracer.count_on_cpu(CpuId(0), first), 1);
        assert_eq!(tracer.count_on_cpu(CpuId(1), first), 1);
    }

    #[test]
    fn snapshot_and_reset() {
        let t = symbols();
        let tracer = FmeterTracer::with_cpus(&t, 2);
        tracer.on_function_call(CpuId(0), FunctionId(3));
        tracer.on_function_call(CpuId(1), FunctionId(3));
        let snap = tracer.snapshot(Nanos(500));
        assert_eq!(snap.counts()[3], 2);
        assert_eq!(snap.total(), 2);
        assert_eq!(snap.taken_at(), Nanos(500));
        tracer.reset();
        assert_eq!(tracer.snapshot(Nanos(600)).total(), 0);
    }

    #[test]
    fn disabled_tracer_records_nothing_and_costs_nothing() {
        let t = symbols();
        let tracer = FmeterTracer::with_cpus(&t, 1);
        tracer.set_enabled(false);
        assert_eq!(tracer.overhead(), Nanos::ZERO);
        tracer.on_function_call(CpuId(0), FunctionId(0));
        assert_eq!(tracer.count(FunctionId(0)), 0);
        tracer.set_enabled(true);
        assert_eq!(tracer.overhead(), FMETER_CALL_OVERHEAD);
        tracer.on_function_call(CpuId(0), FunctionId(0));
        assert_eq!(tracer.count(FunctionId(0)), 1);
    }

    #[test]
    fn debugfs_render_lists_every_function() {
        let t = symbols();
        let tracer = FmeterTracer::with_cpus(&t, 1);
        tracer.on_function_call(CpuId(0), FunctionId(1));
        let rendered = tracer.render_debugfs();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), t.len());
        assert!(lines[1].ends_with(" 1"));
        assert!(lines[0].starts_with("0xffffffff81000000"));
    }

    #[test]
    fn register_debugfs_exposes_counters() {
        let image = KernelImageBuilder::new().build().unwrap();
        let tracer = Arc::new(FmeterTracer::with_cpus(&image.symbols, 2));
        let mut debugfs = Debugfs::new();
        tracer.register_debugfs(&mut debugfs);
        assert_eq!(debugfs.ls(), vec!["tracing/fmeter/counters"]);
        tracer.on_function_call(CpuId(0), FunctionId(0));
        let content = debugfs.read("tracing/fmeter/counters").unwrap();
        assert!(content.lines().next().unwrap().ends_with(" 1"));
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let t = symbols();
        let tracer = Arc::new(FmeterTracer::with_cpus(&t, 4));
        let threads: Vec<_> = (0..4)
            .map(|cpu| {
                let tracer = Arc::clone(&tracer);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        tracer.on_function_call(CpuId(cpu), FunctionId(7));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(tracer.count(FunctionId(7)), 40_000);
    }
}
