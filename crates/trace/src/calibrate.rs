//! Real (wall-clock) calibration of the two tracers' fast paths.
//!
//! The simulated per-call overheads ([`FMETER_CALL_OVERHEAD`],
//! [`FTRACE_CALL_OVERHEAD`]) claim a large cost gap between counting into
//! per-CPU slots and appending ring-buffer records. These helpers measure
//! the *actual* cost of our two implementations on the host running the
//! reproduction, so EXPERIMENTS.md can report the measured ratio next to
//! the modelled one.
//!
//! [`FMETER_CALL_OVERHEAD`]: crate::FMETER_CALL_OVERHEAD
//! [`FTRACE_CALL_OVERHEAD`]: crate::FTRACE_CALL_OVERHEAD

use std::time::Instant;

use fmeter_kernel_sim::{CpuId, FunctionId, FunctionTracer, KernelImageBuilder};

use crate::{FmeterTracer, FtraceTracer};

/// Result of a calibration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Measured nanoseconds per Fmeter counter increment.
    pub fmeter_ns_per_call: f64,
    /// Measured nanoseconds per Ftrace ring-buffer append.
    pub ftrace_ns_per_call: f64,
}

impl Calibration {
    /// Measured ftrace/fmeter cost ratio.
    pub fn ratio(&self) -> f64 {
        if self.fmeter_ns_per_call == 0.0 {
            return f64::INFINITY;
        }
        self.ftrace_ns_per_call / self.fmeter_ns_per_call
    }

    /// Runs both measurements with `iterations` calls each.
    ///
    /// # Panics
    ///
    /// Panics if the standard kernel image fails to build (impossible for
    /// the default builder).
    pub fn measure(iterations: u64) -> Calibration {
        Calibration {
            fmeter_ns_per_call: measure_fmeter_increment(iterations),
            ftrace_ns_per_call: measure_ftrace_append(iterations),
        }
    }
}

/// Measures the real cost of one Fmeter stub execution (stub lookup +
/// per-CPU slot increment), in nanoseconds per call.
pub fn measure_fmeter_increment(iterations: u64) -> f64 {
    let image = KernelImageBuilder::new()
        .build()
        .expect("standard image builds");
    let tracer = FmeterTracer::with_cpus(&image.symbols, 1);
    let functions = spread_functions(image.symbols.len());
    let start = Instant::now();
    for i in 0..iterations {
        tracer.on_function_call(CpuId(0), functions[(i % functions.len() as u64) as usize]);
    }
    let elapsed = start.elapsed();
    std::hint::black_box(tracer.count(functions[0]));
    elapsed.as_nanos() as f64 / iterations as f64
}

/// Measures the real cost of one Ftrace event append (lock + encode +
/// ring push), in nanoseconds per call. Uses a buffer large enough that
/// overwrite churn matches steady-state tracing.
pub fn measure_ftrace_append(iterations: u64) -> f64 {
    let image = KernelImageBuilder::new()
        .build()
        .expect("standard image builds");
    let tracer = FtraceTracer::new(&image.symbols, 1, 1 << 20);
    let functions = spread_functions(image.symbols.len());
    let start = Instant::now();
    for i in 0..iterations {
        tracer.on_function_call(CpuId(0), functions[(i % functions.len() as u64) as usize]);
    }
    let elapsed = start.elapsed();
    std::hint::black_box(tracer.total_recorded());
    elapsed.as_nanos() as f64 / iterations as f64
}

/// A spread of function ids across the table (defeats a single hot cache
/// line being the entire benchmark).
fn spread_functions(num_functions: usize) -> Vec<FunctionId> {
    (0..64)
        .map(|i| FunctionId((i * num_functions / 64) as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_produces_positive_costs() {
        let c = Calibration::measure(10_000);
        assert!(c.fmeter_ns_per_call > 0.0);
        assert!(c.ftrace_ns_per_call > 0.0);
        assert!(c.ratio() > 0.0);
    }

    #[test]
    fn ftrace_append_costs_more_than_fmeter_increment() {
        // The data-structure claim, measured for real. Wall-clock
        // micro-timing is noisy under a loaded test host, so take the
        // best of three runs per side before comparing.
        let best = (0..3)
            .map(|_| Calibration::measure(200_000))
            .map(|c| (c.fmeter_ns_per_call, c.ftrace_ns_per_call))
            .fold((f64::INFINITY, f64::INFINITY), |acc, (f, t)| {
                (acc.0.min(f), acc.1.min(t))
            });
        let ratio = best.1 / best.0;
        assert!(
            ratio > 1.3,
            "expected ring-buffer append to cost well over a counter bump, ratio={ratio}"
        );
    }
}
