//! The paper's §6 proposed optimisation: "maintain a fast cache that
//! holds the call counts for the top N hottest functions", exploiting the
//! power-law call distribution (Figure 1) to keep the counters that
//! absorb most increments in a tiny, cache-resident array.
//!
//! [`HotSetTracer`] implements it: function ids in the hot set map to a
//! small dense per-CPU array (one or two cache lines for N = 16);
//! everything else falls back to the paged slot structure. The
//! `tracer_overhead` bench and [`hit_rate`](HotSetTracer::hit_rate)
//! quantify the effect.

use std::sync::atomic::{AtomicU64, Ordering};

use fmeter_kernel_sim::{CpuId, FunctionId, FunctionTracer, Nanos, SymbolTable};

use crate::{CounterSnapshot, FmeterTracer, FMETER_CALL_OVERHEAD};

/// Sentinel for "not in the hot set".
const COLD: u16 = u16::MAX;

/// A two-level Fmeter counter: a small per-CPU hot array for the top-N
/// functions plus the standard paged structure for the cold tail.
///
/// # Examples
///
/// ```
/// use fmeter_kernel_sim::{CpuId, FunctionId, FunctionTracer, KernelImageBuilder};
/// use fmeter_trace::HotSetTracer;
///
/// let image = KernelImageBuilder::new().build()?;
/// // Pretend profiling ranked function 0 hottest.
/// let mut profile = vec![0u64; image.symbols.len()];
/// profile[0] = 1_000_000;
/// let tracer = HotSetTracer::from_profile(&image.symbols, 4, &profile, 16).with_stats();
/// tracer.on_function_call(CpuId(0), FunctionId(0));
/// assert_eq!(tracer.count(FunctionId(0)), 1);
/// assert_eq!(tracer.hot_hits(), 1);
/// # Ok::<(), fmeter_kernel_sim::KernelError>(())
/// ```
#[derive(Debug)]
pub struct HotSetTracer {
    /// function id -> hot slot (or COLD).
    hot_slot: Vec<u16>,
    /// Function id for each hot slot (for snapshots).
    hot_members: Vec<FunctionId>,
    /// Per-CPU dense hot counters: `hot[cpu][slot]`.
    hot: Vec<Vec<AtomicU64>>,
    /// Cold-tail fallback: the standard paged structure.
    cold: FmeterTracer,
    /// Whether to maintain hit statistics on the fast path. Two extra
    /// relaxed increments per call — useful for evaluation, not for
    /// production (the whole point of the hot set is fewer memory
    /// touches).
    stats_enabled: bool,
    hot_hits: AtomicU64,
    cold_hits: AtomicU64,
}

impl HotSetTracer {
    /// Builds the tracer from a profile: the `n` functions with the
    /// highest profiled counts form the hot set. `profile` is indexed by
    /// function id (e.g. boot-time counts, as §6 suggests choosing N
    /// "experimentally based on the size of the processor caches").
    ///
    /// # Panics
    ///
    /// Panics if `num_cpus` is zero, `n` is zero, or the profile length
    /// differs from the symbol table.
    pub fn from_profile(symbols: &SymbolTable, num_cpus: usize, profile: &[u64], n: usize) -> Self {
        assert!(num_cpus > 0, "need at least one CPU");
        assert!(n > 0, "hot set must hold at least one function");
        assert_eq!(
            profile.len(),
            symbols.len(),
            "profile must cover the symbol table"
        );
        let n = n.min(symbols.len()).min(COLD as usize);
        let mut ranked: Vec<(u64, u32)> = profile
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i as u32))
            .collect();
        ranked.sort_unstable_by(|a, b| b.cmp(a));
        let mut hot_slot = vec![COLD; symbols.len()];
        let mut hot_members = Vec::with_capacity(n);
        for (slot, &(_, id)) in ranked.iter().take(n).enumerate() {
            hot_slot[id as usize] = slot as u16;
            hot_members.push(FunctionId(id));
        }
        HotSetTracer {
            hot_slot,
            hot_members,
            hot: (0..num_cpus)
                .map(|_| (0..n).map(|_| AtomicU64::new(0)).collect())
                .collect(),
            cold: FmeterTracer::with_cpus(symbols, num_cpus),
            stats_enabled: false,
            hot_hits: AtomicU64::new(0),
            cold_hits: AtomicU64::new(0),
        }
    }

    /// Enables hit-rate accounting (two extra relaxed increments per
    /// call; evaluation only).
    pub fn with_stats(mut self) -> Self {
        self.stats_enabled = true;
        self
    }

    /// Size of the hot set.
    pub fn hot_set_len(&self) -> usize {
        self.hot_members.len()
    }

    /// The hot-set members, hottest first.
    pub fn hot_members(&self) -> &[FunctionId] {
        &self.hot_members
    }

    /// Increments recorded through the hot array.
    pub fn hot_hits(&self) -> u64 {
        self.hot_hits.load(Ordering::Relaxed)
    }

    /// Increments recorded through the cold paged structure.
    pub fn cold_hits(&self) -> u64 {
        self.cold_hits.load(Ordering::Relaxed)
    }

    /// Fraction of increments absorbed by the hot array (the §6 payoff;
    /// `0.0` before any call).
    pub fn hit_rate(&self) -> f64 {
        let hot = self.hot_hits() as f64;
        let total = hot + self.cold_hits() as f64;
        if total == 0.0 {
            0.0
        } else {
            hot / total
        }
    }

    /// Aggregated (all-CPU) count for one function, whichever level holds
    /// it.
    pub fn count(&self, function: FunctionId) -> u64 {
        let slot = self.hot_slot[function.index()];
        if slot == COLD {
            self.cold.count(function)
        } else {
            self.hot
                .iter()
                .map(|cpu| cpu[slot as usize].load(Ordering::Relaxed))
                .sum()
        }
    }

    /// Full snapshot across both levels.
    pub fn snapshot(&self, now: Nanos) -> CounterSnapshot {
        let mut base = self.cold.snapshot(now).counts().to_vec();
        for (slot, member) in self.hot_members.iter().enumerate() {
            let hot_total: u64 = self
                .hot
                .iter()
                .map(|cpu| cpu[slot].load(Ordering::Relaxed))
                .sum();
            base[member.index()] += hot_total;
        }
        CounterSnapshot::new(base, now)
    }
}

impl FunctionTracer for HotSetTracer {
    fn on_function_call(&self, cpu: CpuId, function: FunctionId) {
        let slot = self.hot_slot[function.index()];
        if slot == COLD {
            if self.stats_enabled {
                self.cold_hits.fetch_add(1, Ordering::Relaxed);
            }
            self.cold.on_function_call(cpu, function);
        } else {
            if self.stats_enabled {
                self.hot_hits.fetch_add(1, Ordering::Relaxed);
            }
            let cpu_hot = &self.hot[cpu.0 % self.hot.len()];
            cpu_hot[slot as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    fn overhead(&self) -> Nanos {
        // The hot array spares the two-level page indirection and its
        // cache pollution; model the blended cost as half the standard
        // stub for the common (hot) case. The Criterion bench measures
        // the real difference on the host.
        Nanos(FMETER_CALL_OVERHEAD.0.div_ceil(2))
    }

    fn name(&self) -> &str {
        "fmeter-hotset"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmeter_kernel_sim::KernelImageBuilder;

    fn setup(n: usize) -> (fmeter_kernel_sim::KernelImage, HotSetTracer) {
        let image = KernelImageBuilder::new().build().unwrap();
        // Profile: function id i has count 10*i (so the highest ids are
        // hottest).
        let profile: Vec<u64> = (0..image.symbols.len() as u64).map(|i| i * 10).collect();
        let tracer = HotSetTracer::from_profile(&image.symbols, 2, &profile, n).with_stats();
        (image, tracer)
    }

    #[test]
    fn hot_set_holds_the_profiled_top_n() {
        let (image, tracer) = setup(16);
        assert_eq!(tracer.hot_set_len(), 16);
        let last = image.symbols.len() as u32 - 1;
        // The hottest profiled function is the highest id.
        assert_eq!(tracer.hot_members()[0], FunctionId(last));
        // All members come from the top of the profile.
        for m in tracer.hot_members() {
            assert!(m.0 > last - 16);
        }
    }

    #[test]
    fn counts_split_and_merge_across_levels() {
        let (image, tracer) = setup(8);
        let hot_fn = FunctionId(image.symbols.len() as u32 - 1);
        let cold_fn = FunctionId(0);
        for _ in 0..5 {
            tracer.on_function_call(CpuId(0), hot_fn);
        }
        for _ in 0..3 {
            tracer.on_function_call(CpuId(1), cold_fn);
        }
        assert_eq!(tracer.count(hot_fn), 5);
        assert_eq!(tracer.count(cold_fn), 3);
        assert_eq!(tracer.hot_hits(), 5);
        assert_eq!(tracer.cold_hits(), 3);
        assert!((tracer.hit_rate() - 5.0 / 8.0).abs() < 1e-12);
        let snap = tracer.snapshot(Nanos(9));
        assert_eq!(snap.counts()[hot_fn.index()], 5);
        assert_eq!(snap.counts()[cold_fn.index()], 3);
        assert_eq!(snap.total(), 8);
    }

    #[test]
    fn power_law_profile_gives_high_hit_rate() {
        // Calls drawn from the same skewed profile that selected the hot
        // set must be mostly absorbed by it.
        let (image, tracer) = setup(64);
        let n = image.symbols.len();
        // Zipf-ish replay: function ranked r is called ~ 1/(r+1) times.
        for rank in 0..n {
            let id = FunctionId((n - 1 - rank) as u32);
            let calls = 2_000 / (rank + 1);
            for _ in 0..calls {
                tracer.on_function_call(CpuId(0), id);
            }
        }
        assert!(
            tracer.hit_rate() > 0.5,
            "a 64-entry hot set should absorb most of a zipf stream, got {}",
            tracer.hit_rate()
        );
    }

    #[test]
    fn modeled_overhead_is_below_standard_fmeter() {
        let (_, tracer) = setup(4);
        assert!(tracer.overhead() < FMETER_CALL_OVERHEAD);
        assert!(tracer.overhead() > Nanos::ZERO);
        assert_eq!(tracer.name(), "fmeter-hotset");
    }

    #[test]
    #[should_panic(expected = "profile must cover")]
    fn mismatched_profile_panics() {
        let image = KernelImageBuilder::new().build().unwrap();
        let _ = HotSetTracer::from_profile(&image.symbols, 1, &[1, 2, 3], 4);
    }
}
