//! Kernel function tracers: Fmeter and an Ftrace-style function tracer.
//!
//! Both tracers implement the simulator's
//! [`FunctionTracer`](fmeter_kernel_sim::FunctionTracer) hook — the
//! simulated `mcount` — but differ exactly the way the paper's systems do:
//!
//! * [`FmeterTracer`] keeps, per CPU, pages of 8-byte invocation counters
//!   addressed by a per-function (page, slot) stub mapping (paper Figure 3).
//!   Recording a call is one counter increment; nothing else is stored.
//! * [`FtraceTracer`] appends a timestamped per-event record to a per-CPU
//!   lock-protected ring buffer that a consumer drains to user space — more
//!   information, much more work per call.
//!
//! The relative cost of the two fast paths is measured for real by the
//! `tracer_overhead` Criterion bench; the simulated per-call overheads
//! ([`FMETER_CALL_OVERHEAD`], [`FTRACE_CALL_OVERHEAD`]) encode the same
//! ratio for the simulated-time experiments (Tables 1–3).
//!
//! Beyond the two paper tracers, the crate owns the snapshot plumbing
//! the daemon layer consumes — [`CounterSnapshot`] (a point-in-time
//! copy of every counter) and [`DeltaCursor`] (rolling consecutive
//! snapshots into per-interval deltas) — plus beyond-the-paper
//! variants: [`LockFreeFtraceTracer`] (atomic reservation instead of a
//! per-CPU lock) and [`HotSetTracer`] (a bounded hot-function cache).
//! In the repository's data flow (`docs/ARCHITECTURE.md`) this crate
//! sits between the simulator's `mcount` hook and `fmeter-core`'s
//! logging daemon.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibrate;
mod fmeter;
mod ftrace;
mod hotcache;
mod lockfree;
mod ringbuf;
mod snapshot;

pub use calibrate::{measure_fmeter_increment, measure_ftrace_append, Calibration};
pub use fmeter::FmeterTracer;
pub use ftrace::{FtraceTracer, TraceEvent};
pub use hotcache::HotSetTracer;
pub use lockfree::LockFreeFtraceTracer;
pub use ringbuf::RingBuffer;
pub use snapshot::{CounterSnapshot, DeltaCursor};

use fmeter_kernel_sim::Nanos;

/// Simulated per-call cost of the Fmeter stub: follow the two embedded
/// indices, bump the per-CPU slot, toggle the preempt count. Calibrated
/// against the paper's lmbench deltas (Table 1 implies ~2.2 ns per call on
/// 2009-era Nehalem) and consistent with the measured cost of our own
/// counter increment.
pub const FMETER_CALL_OVERHEAD: Nanos = Nanos(2);

/// Simulated per-call cost of the Ftrace function tracer: reserve ring
/// buffer space under a lock, build a timestamped record, commit. The
/// paper's Table 1 deltas imply ~30–50 ns per call; we use 40.
pub const FTRACE_CALL_OVERHEAD: Nanos = Nanos(40);
