use std::sync::atomic::{AtomicU64, Ordering};

use bytes::{Buf, BufMut, BytesMut};
use parking_lot::Mutex;

use fmeter_kernel_sim::{CpuId, FunctionId, FunctionTracer, Nanos, SymbolTable};

use crate::{RingBuffer, FTRACE_CALL_OVERHEAD};

/// One decoded function-trace event, mirroring the Ftrace function
/// tracer's record: which function ran, which function called it, when,
/// and where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Logical timestamp (monotone per tracer).
    pub timestamp: u64,
    /// CPU the call executed on.
    pub cpu: u32,
    /// Address of the traced function (`ip`).
    pub ip: u64,
    /// Address of the caller (`parent_ip`) — the previous function traced
    /// on this CPU, as the real tracer reports the call site.
    pub parent_ip: u64,
}

const EVENT_BYTES: usize = 8 + 4 + 8 + 8;

/// Per-CPU producer state: the ring buffer plus the last-seen function
/// (for `parent_ip`) and scratch space for encoding.
struct PerCpuBuffer {
    ring: RingBuffer,
    last_ip: u64,
    scratch: BytesMut,
}

/// An Ftrace-style function tracer: every call appends a timestamped,
/// per-event record to a lock-protected per-CPU ring buffer.
///
/// This is the paper's comparison baseline. The cost structure is the
/// point: where Fmeter's stub bumps one per-CPU integer, this tracer
/// takes a lock, stamps a timestamp, encodes a 28-byte record, manages
/// ring-buffer space (overwriting the oldest events when the consumer
/// falls behind — losses are counted), and later pays again to drain the
/// data to user space.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use fmeter_kernel_sim::{CpuId, Kernel, KernelConfig, KernelOp};
/// use fmeter_trace::FtraceTracer;
///
/// let mut kernel = Kernel::new(KernelConfig::default())?;
/// let ftrace = Arc::new(FtraceTracer::new(kernel.symbols(), 4, 1 << 16));
/// kernel.set_tracer(ftrace.clone());
///
/// let stats = kernel.run_op(CpuId(0), KernelOp::SyscallNull)?;
/// let events = ftrace.drain(CpuId(0));
/// assert_eq!(events.len() as u64, stats.calls);
/// # Ok::<(), fmeter_kernel_sim::KernelError>(())
/// ```
pub struct FtraceTracer {
    buffers: Vec<Mutex<PerCpuBuffer>>,
    addresses: Vec<u64>,
    clock: AtomicU64,
    enabled: AtomicU64,
}

impl std::fmt::Debug for FtraceTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FtraceTracer")
            .field("cpus", &self.buffers.len())
            .field("functions", &self.addresses.len())
            .finish()
    }
}

impl FtraceTracer {
    /// Creates the tracer with `num_cpus` ring buffers of
    /// `buffer_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if `num_cpus` is zero or the buffer cannot hold one event.
    pub fn new(symbols: &SymbolTable, num_cpus: usize, buffer_bytes: usize) -> Self {
        assert!(num_cpus > 0, "need at least one CPU");
        FtraceTracer {
            buffers: (0..num_cpus)
                .map(|_| {
                    Mutex::new(PerCpuBuffer {
                        ring: RingBuffer::new(buffer_bytes),
                        last_ip: 0,
                        scratch: BytesMut::with_capacity(EVENT_BYTES),
                    })
                })
                .collect(),
            addresses: symbols.iter().map(|f| f.address).collect(),
            clock: AtomicU64::new(0),
            enabled: AtomicU64::new(1),
        }
    }

    /// Enables or disables event recording.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled as u64, Ordering::Relaxed);
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed) != 0
    }

    /// Number of per-CPU buffers.
    pub fn num_cpus(&self) -> usize {
        self.buffers.len()
    }

    /// Drains and decodes all queued events for one CPU (the user-space
    /// consumer side of `trace_pipe`).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn drain(&self, cpu: CpuId) -> Vec<TraceEvent> {
        let mut buffer = self.buffers[cpu.0].lock();
        buffer
            .ring
            .drain()
            .into_iter()
            .map(|raw| Self::decode(&raw))
            .collect()
    }

    /// Drains every CPU, returning events sorted by timestamp.
    pub fn drain_all(&self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = (0..self.buffers.len())
            .flat_map(|c| self.drain(CpuId(c)))
            .collect();
        events.sort_by_key(|e| e.timestamp);
        events
    }

    /// Events lost to ring-buffer overwrite so far, across all CPUs.
    pub fn total_overwritten(&self) -> u64 {
        self.buffers
            .iter()
            .map(|b| b.lock().ring.overwritten())
            .sum()
    }

    /// Total events ever recorded (including later-overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.buffers
            .iter()
            .map(|b| b.lock().ring.total_pushed())
            .sum()
    }

    fn decode(raw: &[u8]) -> TraceEvent {
        let mut buf = raw;
        TraceEvent {
            timestamp: buf.get_u64(),
            cpu: buf.get_u32(),
            ip: buf.get_u64(),
            parent_ip: buf.get_u64(),
        }
    }
}

impl FunctionTracer for FtraceTracer {
    fn on_function_call(&self, cpu: CpuId, function: FunctionId) {
        if !self.is_enabled() {
            return;
        }
        let timestamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let ip = self.addresses[function.index()];
        let slot = cpu.0 % self.buffers.len();
        // The expensive part the paper measures: lock, reserve, encode,
        // commit — per event.
        let mut buffer = self.buffers[slot].lock();
        let parent_ip = buffer.last_ip;
        buffer.last_ip = ip;
        buffer.scratch.clear();
        buffer.scratch.put_u64(timestamp);
        buffer.scratch.put_u32(cpu.0 as u32);
        buffer.scratch.put_u64(ip);
        buffer.scratch.put_u64(parent_ip);
        let record = buffer.scratch.split().freeze();
        buffer.ring.push(&record);
    }

    fn overhead(&self) -> Nanos {
        if self.is_enabled() {
            FTRACE_CALL_OVERHEAD
        } else {
            Nanos::ZERO
        }
    }

    fn name(&self) -> &str {
        "ftrace"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmeter_kernel_sim::Subsystem;

    fn symbols(n: usize) -> SymbolTable {
        let mut t = SymbolTable::new();
        for i in 0..n {
            t.push(
                format!("f{i}"),
                0xffff_ffff_8100_0000 + i as u64 * 0x40,
                Subsystem::Util,
                0,
                Nanos(5),
            );
        }
        t
    }

    #[test]
    fn records_are_decoded_in_order() {
        let t = symbols(4);
        let tracer = FtraceTracer::new(&t, 1, 4096);
        tracer.on_function_call(CpuId(0), FunctionId(1));
        tracer.on_function_call(CpuId(0), FunctionId(2));
        let events = tracer.drain(CpuId(0));
        assert_eq!(events.len(), 2);
        assert!(events[0].timestamp < events[1].timestamp);
        assert_eq!(events[0].ip, 0xffff_ffff_8100_0040);
        // Event 2's parent is event 1's ip — the call-site chain.
        assert_eq!(events[1].parent_ip, events[0].ip);
    }

    #[test]
    fn per_cpu_buffers_are_independent() {
        let t = symbols(4);
        let tracer = FtraceTracer::new(&t, 2, 4096);
        tracer.on_function_call(CpuId(0), FunctionId(0));
        tracer.on_function_call(CpuId(1), FunctionId(1));
        assert_eq!(tracer.drain(CpuId(0)).len(), 1);
        assert_eq!(tracer.drain(CpuId(1)).len(), 1);
        assert!(tracer.drain(CpuId(0)).is_empty());
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let t = symbols(2);
        // Room for ~4 events only.
        let tracer = FtraceTracer::new(&t, 1, (EVENT_BYTES + 4) * 4 + 1);
        for _ in 0..100 {
            tracer.on_function_call(CpuId(0), FunctionId(0));
        }
        assert!(tracer.total_overwritten() > 0);
        assert_eq!(tracer.total_recorded(), 100);
        let events = tracer.drain(CpuId(0));
        assert!(events.len() <= 4);
        // Survivors are the newest events.
        assert_eq!(events.last().unwrap().timestamp, 99);
    }

    #[test]
    fn drain_all_sorts_by_timestamp() {
        let t = symbols(4);
        let tracer = FtraceTracer::new(&t, 4, 4096);
        for i in 0..20u32 {
            tracer.on_function_call(CpuId((i % 4) as usize), FunctionId(i % 4));
        }
        let events = tracer.drain_all();
        assert_eq!(events.len(), 20);
        for pair in events.windows(2) {
            assert!(pair[0].timestamp <= pair[1].timestamp);
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let t = symbols(2);
        let tracer = FtraceTracer::new(&t, 1, 4096);
        tracer.set_enabled(false);
        assert_eq!(tracer.overhead(), Nanos(0));
        tracer.on_function_call(CpuId(0), FunctionId(0));
        assert!(tracer.drain(CpuId(0)).is_empty());
        tracer.set_enabled(true);
        assert_eq!(tracer.overhead(), FTRACE_CALL_OVERHEAD);
    }

    #[test]
    fn ftrace_is_much_costlier_than_fmeter() {
        // The central systems claim, encoded as a guard: the simulated
        // per-call costs must keep a wide gap.
        const { assert!(FTRACE_CALL_OVERHEAD.0 >= 10 * crate::FMETER_CALL_OVERHEAD.0) }
    }

    #[test]
    fn concurrent_producers_do_not_lose_events() {
        let t = symbols(4);
        let tracer = std::sync::Arc::new(FtraceTracer::new(&t, 4, 1 << 20));
        let threads: Vec<_> = (0..4)
            .map(|cpu| {
                let tracer = std::sync::Arc::clone(&tracer);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        tracer.on_function_call(CpuId(cpu), FunctionId(0));
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(tracer.total_recorded(), 20_000);
        assert_eq!(tracer.drain_all().len(), 20_000);
    }
}
