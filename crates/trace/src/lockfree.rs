//! A lock-free event tracer — the design §3 of the paper discusses as
//! Ftrace's future: "there have since been various attempts to replace
//! \[the lock-heavy ring buffer\] with a wait-free alternative. Wait-free
//! FIFO buffers are difficult to prove correct and are prone to subtle
//! race-conditions and errors."
//!
//! [`LockFreeFtraceTracer`] keeps Ftrace's per-event record format but
//! replaces the mutex-guarded byte ring with a bounded lock-free queue
//! (crossbeam's `ArrayQueue`). When full it *drops the newest* events
//! (producer-overrun mode) instead of overwriting the oldest — the other
//! classic policy, also counted. The `tracer_overhead` bench compares
//! the two appends; note that lock-freedom does **not** make tracing
//! cheap: each event still pays allocation-free encoding plus an atomic
//! slot reservation, far more than Fmeter's single per-CPU increment —
//! which is exactly the paper's argument for counting over tracing.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::queue::ArrayQueue;

use fmeter_kernel_sim::{CpuId, FunctionId, FunctionTracer, Nanos, SymbolTable};

use crate::{TraceEvent, FTRACE_CALL_OVERHEAD};

/// Fixed-size encoded event: timestamp, cpu, ip, parent_ip.
type RawEvent = [u8; 28];

fn encode(timestamp: u64, cpu: u32, ip: u64, parent_ip: u64) -> RawEvent {
    let mut out = [0u8; 28];
    out[0..8].copy_from_slice(&timestamp.to_be_bytes());
    out[8..12].copy_from_slice(&cpu.to_be_bytes());
    out[12..20].copy_from_slice(&ip.to_be_bytes());
    out[20..28].copy_from_slice(&parent_ip.to_be_bytes());
    out
}

fn decode(raw: &RawEvent) -> TraceEvent {
    TraceEvent {
        timestamp: u64::from_be_bytes(raw[0..8].try_into().expect("8 bytes")),
        cpu: u32::from_be_bytes(raw[8..12].try_into().expect("4 bytes")),
        ip: u64::from_be_bytes(raw[12..20].try_into().expect("8 bytes")),
        parent_ip: u64::from_be_bytes(raw[20..28].try_into().expect("8 bytes")),
    }
}

/// Per-CPU lock-free state.
struct PerCpu {
    queue: ArrayQueue<RawEvent>,
    last_ip: AtomicU64,
    dropped: AtomicU64,
}

/// An Ftrace-style function tracer over per-CPU lock-free bounded queues.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use fmeter_kernel_sim::{CpuId, Kernel, KernelConfig, KernelOp};
/// use fmeter_trace::LockFreeFtraceTracer;
///
/// let mut kernel = Kernel::new(KernelConfig::default())?;
/// let tracer = Arc::new(LockFreeFtraceTracer::new(kernel.symbols(), 4, 4096));
/// kernel.set_tracer(tracer.clone());
/// let stats = kernel.run_op(CpuId(0), KernelOp::SyscallNull)?;
/// assert_eq!(tracer.drain(CpuId(0)).len() as u64, stats.calls);
/// # Ok::<(), fmeter_kernel_sim::KernelError>(())
/// ```
pub struct LockFreeFtraceTracer {
    cpus: Vec<PerCpu>,
    addresses: Vec<u64>,
    clock: AtomicU64,
    enabled: AtomicU64,
}

impl std::fmt::Debug for LockFreeFtraceTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockFreeFtraceTracer")
            .field("cpus", &self.cpus.len())
            .field("functions", &self.addresses.len())
            .finish()
    }
}

impl LockFreeFtraceTracer {
    /// Creates the tracer with `num_cpus` queues of `events_per_cpu`
    /// capacity each.
    ///
    /// # Panics
    ///
    /// Panics if `num_cpus` or `events_per_cpu` is zero.
    pub fn new(symbols: &SymbolTable, num_cpus: usize, events_per_cpu: usize) -> Self {
        assert!(num_cpus > 0, "need at least one CPU");
        assert!(events_per_cpu > 0, "queue must hold at least one event");
        LockFreeFtraceTracer {
            cpus: (0..num_cpus)
                .map(|_| PerCpu {
                    queue: ArrayQueue::new(events_per_cpu),
                    last_ip: AtomicU64::new(0),
                    dropped: AtomicU64::new(0),
                })
                .collect(),
            addresses: symbols.iter().map(|f| f.address).collect(),
            clock: AtomicU64::new(0),
            enabled: AtomicU64::new(1),
        }
    }

    /// Enables or disables recording.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled as u64, Ordering::Relaxed);
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed) != 0
    }

    /// Number of per-CPU queues.
    pub fn num_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// Events dropped because a queue was full (newest-dropped policy).
    pub fn total_dropped(&self) -> u64 {
        self.cpus
            .iter()
            .map(|c| c.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Drains and decodes one CPU's queue, oldest first.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn drain(&self, cpu: CpuId) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        while let Some(raw) = self.cpus[cpu.0].queue.pop() {
            out.push(decode(&raw));
        }
        out
    }

    /// Drains every CPU, sorted by timestamp.
    pub fn drain_all(&self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = (0..self.cpus.len())
            .flat_map(|c| self.drain(CpuId(c)))
            .collect();
        events.sort_by_key(|e| e.timestamp);
        events
    }
}

impl FunctionTracer for LockFreeFtraceTracer {
    fn on_function_call(&self, cpu: CpuId, function: FunctionId) {
        if !self.is_enabled() {
            return;
        }
        let timestamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let ip = self.addresses[function.index()];
        let slot = &self.cpus[cpu.0 % self.cpus.len()];
        let parent_ip = slot.last_ip.swap(ip, Ordering::Relaxed);
        let raw = encode(timestamp, cpu.0 as u32, ip, parent_ip);
        if slot.queue.push(raw).is_err() {
            slot.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn overhead(&self) -> Nanos {
        // Cheaper than the locked ring (no lock word bouncing) but still
        // an order of magnitude above a counter bump: ~60% of the locked
        // cost, matching the relief LWN reported for lockless buffers.
        if self.is_enabled() {
            Nanos((FTRACE_CALL_OVERHEAD.0 * 6).div_ceil(10))
        } else {
            Nanos::ZERO
        }
    }

    fn name(&self) -> &str {
        "ftrace-lockfree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmeter_kernel_sim::Subsystem;
    use std::sync::Arc;

    fn symbols(n: usize) -> SymbolTable {
        let mut t = SymbolTable::new();
        for i in 0..n {
            t.push(
                format!("f{i}"),
                0xffff_ffff_8100_0000 + i as u64 * 0x40,
                Subsystem::Util,
                0,
                Nanos(5),
            );
        }
        t
    }

    #[test]
    fn events_round_trip_in_order() {
        let t = symbols(4);
        let tracer = LockFreeFtraceTracer::new(&t, 1, 128);
        tracer.on_function_call(CpuId(0), FunctionId(1));
        tracer.on_function_call(CpuId(0), FunctionId(2));
        let events = tracer.drain(CpuId(0));
        assert_eq!(events.len(), 2);
        assert!(events[0].timestamp < events[1].timestamp);
        assert_eq!(events[1].parent_ip, events[0].ip);
        assert_eq!(events[0].cpu, 0);
    }

    #[test]
    fn full_queue_drops_newest_and_counts() {
        let t = symbols(2);
        let tracer = LockFreeFtraceTracer::new(&t, 1, 4);
        for _ in 0..10 {
            tracer.on_function_call(CpuId(0), FunctionId(0));
        }
        assert_eq!(tracer.total_dropped(), 6);
        let events = tracer.drain(CpuId(0));
        assert_eq!(events.len(), 4);
        // Oldest survive (drop-newest policy — the opposite of the locked
        // ring's overwrite-oldest).
        assert_eq!(events[0].timestamp, 0);
        assert_eq!(events[3].timestamp, 3);
    }

    #[test]
    fn concurrent_producers_lose_nothing_under_capacity() {
        let t = symbols(8);
        let tracer = Arc::new(LockFreeFtraceTracer::new(&t, 4, 1 << 16));
        let threads: Vec<_> = (0..4)
            .map(|cpu| {
                let tracer = Arc::clone(&tracer);
                std::thread::spawn(move || {
                    for i in 0..10_000u32 {
                        tracer.on_function_call(CpuId(cpu), FunctionId(i % 8));
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(tracer.total_dropped(), 0);
        let events = tracer.drain_all();
        assert_eq!(events.len(), 40_000);
        // Timestamps are unique.
        let mut stamps: Vec<u64> = events.iter().map(|e| e.timestamp).collect();
        stamps.sort_unstable();
        stamps.dedup();
        assert_eq!(stamps.len(), 40_000);
    }

    #[test]
    fn overhead_sits_between_fmeter_and_locked_ftrace() {
        let t = symbols(2);
        let tracer = LockFreeFtraceTracer::new(&t, 1, 16);
        assert!(tracer.overhead() < FTRACE_CALL_OVERHEAD);
        assert!(tracer.overhead() > crate::FMETER_CALL_OVERHEAD);
        tracer.set_enabled(false);
        assert_eq!(tracer.overhead(), Nanos::ZERO);
        tracer.on_function_call(CpuId(0), FunctionId(0));
        assert!(tracer.drain(CpuId(0)).is_empty());
    }
}
