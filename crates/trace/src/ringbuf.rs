//! A fixed-capacity circular byte buffer for variable-size trace records.
//!
//! Models the kernel's trace ring buffer: producers reserve space and
//! commit records; a consumer drains them. When full, the buffer
//! *overwrites the oldest records* (Ftrace's default `overwrite` mode) and
//! counts how many records were lost — the paper's §3 discusses exactly
//! this circular-buffer management complexity as a reason Fmeter avoids
//! the mechanism altogether.

use bytes::{Buf, BufMut};

/// A bounded FIFO of length-prefixed records over a circular byte buffer.
///
/// Not internally synchronised: [`FtraceTracer`](crate::FtraceTracer) wraps
/// one per CPU in a `Mutex`, matching the lock-heavy buffer of the paper's
/// 2.6.28 baseline.
///
/// # Examples
///
/// ```
/// use fmeter_trace::RingBuffer;
///
/// let mut rb = RingBuffer::new(64);
/// rb.push(b"hello");
/// rb.push(b"world");
/// assert_eq!(rb.pop().as_deref(), Some(&b"hello"[..]));
/// assert_eq!(rb.pop().as_deref(), Some(&b"world"[..]));
/// assert_eq!(rb.pop(), None);
/// ```
#[derive(Debug)]
pub struct RingBuffer {
    buf: Vec<u8>,
    head: usize,
    tail: usize,
    used: usize,
    records: usize,
    overwritten: u64,
    total_pushed: u64,
}

const LEN_PREFIX: usize = 4;

impl RingBuffer {
    /// Creates a buffer of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` cannot hold at least one length prefix plus
    /// one byte.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity > LEN_PREFIX,
            "capacity {capacity} too small for any record"
        );
        RingBuffer {
            buf: vec![0; capacity],
            head: 0,
            tail: 0,
            used: 0,
            records: 0,
            overwritten: 0,
            total_pushed: 0,
        }
    }

    /// Buffer capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Bytes currently occupied by queued records.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Number of queued records.
    pub fn len(&self) -> usize {
        self.records
    }

    /// Returns `true` when no records are queued.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Records overwritten (lost) because the buffer was full.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Total records ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Appends a record, evicting oldest records if needed (overwrite
    /// mode). Records larger than the whole buffer are rejected by panic —
    /// the kernel would likewise BUG on an event bigger than the buffer.
    ///
    /// # Panics
    ///
    /// Panics if `record.len() + 4 > capacity`.
    pub fn push(&mut self, record: &[u8]) {
        let needed = record.len() + LEN_PREFIX;
        assert!(
            needed <= self.capacity(),
            "record of {} bytes exceeds ring capacity {}",
            record.len(),
            self.capacity()
        );
        while self.capacity() - self.used < needed {
            self.evict_oldest();
        }
        let mut len_prefix = [0u8; LEN_PREFIX];
        (&mut len_prefix[..]).put_u32(record.len() as u32);
        self.write_bytes(&len_prefix);
        self.write_bytes(record);
        self.records += 1;
        self.total_pushed += 1;
    }

    /// Removes and returns the oldest record.
    pub fn pop(&mut self) -> Option<Vec<u8>> {
        if self.records == 0 {
            return None;
        }
        let mut len_prefix = [0u8; LEN_PREFIX];
        self.read_bytes(&mut len_prefix);
        let len = (&len_prefix[..]).get_u32() as usize;
        let mut record = vec![0u8; len];
        self.read_bytes(&mut record);
        self.records -= 1;
        Some(record)
    }

    /// Drains all queued records, oldest first.
    pub fn drain(&mut self) -> Vec<Vec<u8>> {
        let mut out = Vec::with_capacity(self.records);
        while let Some(r) = self.pop() {
            out.push(r);
        }
        out
    }

    /// Drops the oldest record without returning it.
    fn evict_oldest(&mut self) {
        debug_assert!(self.records > 0, "evict on empty ring");
        let mut len_prefix = [0u8; LEN_PREFIX];
        self.read_bytes(&mut len_prefix);
        let len = (&len_prefix[..]).get_u32() as usize;
        self.head = (self.head + len) % self.capacity();
        self.used -= len;
        self.records -= 1;
        self.overwritten += 1;
    }

    fn write_bytes(&mut self, data: &[u8]) {
        let cap = self.capacity();
        for &b in data {
            self.buf[self.tail] = b;
            self.tail = (self.tail + 1) % cap;
        }
        self.used += data.len();
    }

    fn read_bytes(&mut self, out: &mut [u8]) {
        let cap = self.capacity();
        for slot in out.iter_mut() {
            *slot = self.buf[self.head];
            self.head = (self.head + 1) % cap;
        }
        self.used -= out.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut rb = RingBuffer::new(256);
        for i in 0..10u8 {
            rb.push(&[i; 3]);
        }
        assert_eq!(rb.len(), 10);
        for i in 0..10u8 {
            assert_eq!(rb.pop().unwrap(), vec![i; 3]);
        }
        assert!(rb.is_empty());
        assert_eq!(rb.overwritten(), 0);
    }

    #[test]
    fn no_loss_under_capacity() {
        let mut rb = RingBuffer::new(1024);
        for i in 0..50u8 {
            rb.push(&[i; 12]); // 50 * 16 = 800 bytes < 1024
        }
        assert_eq!(rb.len(), 50);
        assert_eq!(rb.overwritten(), 0);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let mut rb = RingBuffer::new(64); // fits 4 x (12+4)
        for i in 0..10u8 {
            rb.push(&[i; 12]);
        }
        assert_eq!(rb.overwritten(), 6);
        assert_eq!(rb.total_pushed(), 10);
        // The oldest surviving record is #6.
        assert_eq!(rb.pop().unwrap(), vec![6u8; 12]);
    }

    #[test]
    fn wraparound_is_transparent() {
        let mut rb = RingBuffer::new(40);
        // Interleave pushes and pops to force head/tail wraps.
        for round in 0..100u8 {
            rb.push(&[round; 7]);
            assert_eq!(rb.pop().unwrap(), vec![round; 7]);
        }
        assert!(rb.is_empty());
        assert_eq!(rb.overwritten(), 0);
    }

    #[test]
    fn variable_sized_records() {
        let mut rb = RingBuffer::new(512);
        rb.push(b"");
        rb.push(b"x");
        rb.push(&[7u8; 100]);
        assert_eq!(rb.pop().unwrap(), Vec::<u8>::new());
        assert_eq!(rb.pop().unwrap(), b"x".to_vec());
        assert_eq!(rb.pop().unwrap(), vec![7u8; 100]);
    }

    #[test]
    fn drain_returns_everything() {
        let mut rb = RingBuffer::new(256);
        for i in 0..5u8 {
            rb.push(&[i]);
        }
        let drained = rb.drain();
        assert_eq!(drained.len(), 5);
        assert!(rb.is_empty());
        assert_eq!(rb.used(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds ring capacity")]
    fn oversized_record_panics() {
        let mut rb = RingBuffer::new(16);
        rb.push(&[0u8; 32]);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_capacity_rejected() {
        let _ = RingBuffer::new(4);
    }

    #[test]
    fn used_bytes_accounting() {
        let mut rb = RingBuffer::new(128);
        rb.push(&[1u8; 10]);
        assert_eq!(rb.used(), 14);
        rb.push(&[2u8; 10]);
        assert_eq!(rb.used(), 28);
        rb.pop();
        assert_eq!(rb.used(), 14);
    }
}
