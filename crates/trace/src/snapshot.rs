use fmeter_kernel_sim::Nanos;
use serde::{Deserialize, Serialize};

/// A point-in-time copy of all per-function invocation counters.
///
/// The Fmeter logging daemon "reads all kernel function invocation counts
/// twice (before and after the time interval) and generates the difference
/// between them" — [`CounterSnapshot::delta`] is that difference.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    counts: Vec<u64>,
    taken_at: Nanos,
}

impl CounterSnapshot {
    /// Wraps raw counter values captured at simulated time `taken_at`.
    pub fn new(counts: Vec<u64>, taken_at: Nanos) -> Self {
        CounterSnapshot { counts, taken_at }
    }

    /// The per-function counts (indexed by function id).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of functions covered.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` for an empty (zero-function) snapshot.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Simulated time at which the snapshot was taken.
    pub fn taken_at(&self) -> Nanos {
        self.taken_at
    }

    /// Sum of all counters.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-function difference `later - self`, saturating at zero.
    ///
    /// Counters are monotone while a tracer stays installed, so saturation
    /// only triggers if the counters were reset between snapshots — in that
    /// case the delta for a shrunken counter is meaningless and clamping to
    /// zero is the conservative choice.
    ///
    /// # Panics
    ///
    /// Panics when the snapshots cover different function counts
    /// (snapshots from different kernels are not comparable — the paper
    /// notes signatures are not valid across kernel versions).
    pub fn delta(&self, later: &CounterSnapshot) -> Vec<u64> {
        assert_eq!(
            self.counts.len(),
            later.counts.len(),
            "snapshots cover different symbol tables"
        );
        self.counts
            .iter()
            .zip(&later.counts)
            .map(|(&a, &b)| b.saturating_sub(a))
            .collect()
    }

    /// Interval between this snapshot and a `later` one.
    pub fn interval(&self, later: &CounterSnapshot) -> Nanos {
        later.taken_at - self.taken_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_elementwise_difference() {
        let a = CounterSnapshot::new(vec![1, 5, 10], Nanos(100));
        let b = CounterSnapshot::new(vec![4, 5, 30], Nanos(400));
        assert_eq!(a.delta(&b), vec![3, 0, 20]);
        assert_eq!(a.interval(&b), Nanos(300));
    }

    #[test]
    fn delta_saturates_on_reset() {
        let a = CounterSnapshot::new(vec![10], Nanos(0));
        let b = CounterSnapshot::new(vec![3], Nanos(1));
        assert_eq!(a.delta(&b), vec![0]);
    }

    #[test]
    #[should_panic(expected = "different symbol tables")]
    fn mismatched_lengths_panic() {
        let a = CounterSnapshot::new(vec![1], Nanos(0));
        let b = CounterSnapshot::new(vec![1, 2], Nanos(0));
        let _ = a.delta(&b);
    }

    #[test]
    fn accessors() {
        let s = CounterSnapshot::new(vec![2, 3], Nanos(7));
        assert_eq!(s.total(), 5);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.taken_at(), Nanos(7));
        assert_eq!(s.counts(), &[2, 3]);
    }
}
