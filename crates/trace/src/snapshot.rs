use fmeter_kernel_sim::Nanos;
use serde::{Deserialize, Serialize};

/// A point-in-time copy of all per-function invocation counters.
///
/// The Fmeter logging daemon "reads all kernel function invocation counts
/// twice (before and after the time interval) and generates the difference
/// between them" — [`CounterSnapshot::delta`] is that difference.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    counts: Vec<u64>,
    taken_at: Nanos,
}

impl CounterSnapshot {
    /// Wraps raw counter values captured at simulated time `taken_at`.
    pub fn new(counts: Vec<u64>, taken_at: Nanos) -> Self {
        CounterSnapshot { counts, taken_at }
    }

    /// The per-function counts (indexed by function id).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of functions covered.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` for an empty (zero-function) snapshot.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Simulated time at which the snapshot was taken.
    pub fn taken_at(&self) -> Nanos {
        self.taken_at
    }

    /// Sum of all counters.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-function difference `later - self`, saturating at zero.
    ///
    /// Counters are monotone while a tracer stays installed, so saturation
    /// only triggers if the counters were reset between snapshots — in that
    /// case the delta for a shrunken counter is meaningless and clamping to
    /// zero is the conservative choice.
    ///
    /// # Panics
    ///
    /// Panics when the snapshots cover different function counts
    /// (snapshots from different kernels are not comparable — the paper
    /// notes signatures are not valid across kernel versions).
    pub fn delta(&self, later: &CounterSnapshot) -> Vec<u64> {
        assert_eq!(
            self.counts.len(),
            later.counts.len(),
            "snapshots cover different symbol tables"
        );
        self.counts
            .iter()
            .zip(&later.counts)
            .map(|(&a, &b)| b.saturating_sub(a))
            .collect()
    }

    /// Interval between this snapshot and a `later` one.
    pub fn interval(&self, later: &CounterSnapshot) -> Nanos {
        later.taken_at - self.taken_at
    }
}

/// A rolling delta over a stream of [`CounterSnapshot`]s — the state a
/// streaming logging daemon carries between intervals.
///
/// Each [`advance`](DeltaCursor::advance) consumes the next snapshot and
/// yields the per-function count difference since the previous one,
/// together with the interval bounds: exactly the payload an incremental
/// signature database ingests per interval. The cursor owns only the
/// latest snapshot, so a daemon that runs forever holds O(functions)
/// state, not O(history).
///
/// # Examples
///
/// ```
/// use fmeter_kernel_sim::Nanos;
/// use fmeter_trace::{CounterSnapshot, DeltaCursor};
///
/// let mut cursor = DeltaCursor::new(CounterSnapshot::new(vec![5, 0], Nanos(100)));
/// let (counts, started, ended) = cursor.advance(CounterSnapshot::new(vec![9, 2], Nanos(200)));
/// assert_eq!(counts, vec![4, 2]);
/// assert_eq!((started, ended), (Nanos(100), Nanos(200)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaCursor {
    previous: CounterSnapshot,
}

impl DeltaCursor {
    /// Starts the stream at `initial` (its counts are the baseline the
    /// first delta is measured from).
    pub fn new(initial: CounterSnapshot) -> Self {
        DeltaCursor { previous: initial }
    }

    /// The snapshot the next delta will be measured from.
    pub fn previous(&self) -> &CounterSnapshot {
        &self.previous
    }

    /// Consumes `next` and returns `(counts, started_at, ended_at)` for
    /// the interval between the previous snapshot and `next`.
    ///
    /// # Panics
    ///
    /// Panics when the snapshots cover different function counts (see
    /// [`CounterSnapshot::delta`]).
    pub fn advance(&mut self, next: CounterSnapshot) -> (Vec<u64>, Nanos, Nanos) {
        let counts = self.previous.delta(&next);
        let started_at = self.previous.taken_at();
        let ended_at = next.taken_at();
        self.previous = next;
        (counts, started_at, ended_at)
    }

    /// Re-bases the stream on `snapshot`, discarding whatever happened
    /// since the previous one (e.g. after a workload change, to avoid a
    /// mixed-interval signature).
    pub fn rebase(&mut self, snapshot: CounterSnapshot) {
        self.previous = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_elementwise_difference() {
        let a = CounterSnapshot::new(vec![1, 5, 10], Nanos(100));
        let b = CounterSnapshot::new(vec![4, 5, 30], Nanos(400));
        assert_eq!(a.delta(&b), vec![3, 0, 20]);
        assert_eq!(a.interval(&b), Nanos(300));
    }

    #[test]
    fn delta_saturates_on_reset() {
        let a = CounterSnapshot::new(vec![10], Nanos(0));
        let b = CounterSnapshot::new(vec![3], Nanos(1));
        assert_eq!(a.delta(&b), vec![0]);
    }

    #[test]
    #[should_panic(expected = "different symbol tables")]
    fn mismatched_lengths_panic() {
        let a = CounterSnapshot::new(vec![1], Nanos(0));
        let b = CounterSnapshot::new(vec![1, 2], Nanos(0));
        let _ = a.delta(&b);
    }

    #[test]
    fn accessors() {
        let s = CounterSnapshot::new(vec![2, 3], Nanos(7));
        assert_eq!(s.total(), 5);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.taken_at(), Nanos(7));
        assert_eq!(s.counts(), &[2, 3]);
    }

    #[test]
    fn cursor_yields_consecutive_disjoint_deltas() {
        let mut cursor = DeltaCursor::new(CounterSnapshot::new(vec![0, 10], Nanos(0)));
        let (d1, s1, e1) = cursor.advance(CounterSnapshot::new(vec![3, 12], Nanos(5)));
        assert_eq!(d1, vec![3, 2]);
        assert_eq!((s1, e1), (Nanos(0), Nanos(5)));
        let (d2, s2, e2) = cursor.advance(CounterSnapshot::new(vec![3, 20], Nanos(9)));
        assert_eq!(d2, vec![0, 8]);
        // Intervals tile the stream with no gap or overlap.
        assert_eq!((s2, e2), (e1, Nanos(9)));
        assert_eq!(cursor.previous().taken_at(), Nanos(9));
    }

    #[test]
    fn cursor_rebase_discards_interim_counts() {
        let mut cursor = DeltaCursor::new(CounterSnapshot::new(vec![0], Nanos(0)));
        cursor.rebase(CounterSnapshot::new(vec![100], Nanos(50)));
        let (d, s, e) = cursor.advance(CounterSnapshot::new(vec![101], Nanos(60)));
        assert_eq!(d, vec![1]);
        assert_eq!((s, e), (Nanos(50), Nanos(60)));
    }
}
