//! Kernel symbol name pools.
//!
//! Each subsystem gets a hand-authored set of *anchor* names (real Linux
//! 2.6-era symbols — these are the functions op plans and hand-wired call
//! edges reference) plus a deterministic generator that fills the subsystem
//! out to its target population with plausible helper names.

use crate::Subsystem;

/// Hand-authored anchor symbols for a subsystem, in layer order.
/// `anchors(s)[layer]` lists the anchor names placed at that layer.
pub(crate) fn anchors(subsystem: Subsystem) -> &'static [&'static [&'static str]] {
    match subsystem {
        Subsystem::Syscall => &[
            &[
                "system_call", "sys_read", "sys_write", "sys_open", "sys_close", "sys_stat",
                "sys_fstat", "sys_lstat", "sys_lseek", "sys_select", "sys_poll", "sys_mmap",
                "sys_munmap", "sys_brk", "sys_fork", "sys_vfork", "sys_clone", "sys_execve",
                "sys_exit", "sys_exit_group", "sys_wait4", "sys_pipe", "sys_fcntl",
                "sys_ioctl", "sys_socketcall", "sys_socket", "sys_connect", "sys_accept",
                "sys_sendto", "sys_recvfrom", "sys_sendmsg", "sys_recvmsg", "sys_sendfile64",
                "sys_semget", "sys_semop", "sys_semtimedop", "sys_rt_sigaction",
                "sys_rt_sigprocmask", "sys_rt_sigreturn", "sys_nanosleep", "sys_getpid",
                "sys_getppid", "sys_gettimeofday", "sys_sched_yield", "sys_unlink",
                "sys_mkdir", "sys_rename", "sys_fsync", "sys_getdents", "sys_getdents64",
                "sys_dup2", "sys_kill", "sys_tgkill", "sys_futex", "sys_mprotect",
            ],
            &[
                "syscall_trace_enter", "syscall_trace_leave", "audit_syscall_entry",
                "audit_syscall_exit", "ret_from_sys_call", "do_notify_resume",
                "int_ret_from_sys_call", "ptrace_notify",
            ],
        ],
        Subsystem::Vfs => &[
            &[
                "vfs_read", "vfs_write", "do_sys_open", "filp_close", "vfs_stat", "vfs_fstat",
                "vfs_lstat", "do_select", "core_sys_select", "do_sys_poll", "sys_pread64",
                "vfs_readv", "vfs_writev", "do_sendfile", "vfs_fsync", "do_fcntl",
                "fcntl_setlk", "vfs_create", "vfs_unlink", "vfs_mkdir", "vfs_rename",
                "vfs_readdir", "vfs_llseek", "do_pipe_flags", "do_dup2",
            ],
            &[
                "do_filp_open", "path_lookup", "do_path_lookup", "path_walk",
                "link_path_walk", "fget_light", "fget", "fput", "__fput", "get_empty_filp",
                "alloc_fd", "fd_install", "put_unused_fd", "expand_files",
                "generic_file_aio_read", "generic_file_aio_write", "do_sync_read",
                "do_sync_write", "generic_file_llseek", "rw_verify_area", "pipe_read",
                "pipe_write", "pipe_poll", "cp_new_stat", "generic_file_open",
                "may_open", "nameidata_to_filp", "posix_lock_file", "locks_remove_posix",
                "__posix_lock_file", "generic_file_buffered_write",
                "generic_file_direct_write", "do_readv_writev", "poll_initwait",
                "poll_freewait", "__pollwait", "sys_epoll_wait_helper",
            ],
            &[
                "do_lookup", "__link_path_walk", "pipe_wait", "permission", "generic_permission",
                "exec_permission_lite", "dput", "dget", "d_lookup", "__d_lookup", "d_alloc",
                "d_instantiate", "d_rehash", "d_invalidate", "dentry_open", "iget_locked",
                "iput", "__iget", "new_inode", "inode_init_once", "touch_atime",
                "file_update_time", "mnt_want_write", "mnt_drop_write", "follow_mount",
                "__follow_mount", "mntput_no_expire", "mntget", "lookup_mnt",
                "vfs_getattr", "generic_fillattr", "inode_permission", "file_move",
                "file_kill", "notify_change", "inode_setattr",
            ],
            &[
                "d_free", "d_kill", "dentry_iput", "inode_has_buffers", "ifind_fast",
                "inode_sb_list_add", "wake_up_inode", "generic_drop_inode",
                "destroy_inode", "prune_dcache_one", "shrink_dcache_parent_step",
                "select_parent_step", "fasync_helper", "f_delown", "locks_alloc_lock",
                "locks_free_lock", "locks_insert_lock", "locks_delete_lock",
                "flock_lock_file", "vfsmount_lock_ping",
            ],
        ],
        Subsystem::Ipc => &[
            &[
                "do_semtimedop", "sys_msgsnd_impl", "do_signal", "get_signal_to_deliver",
                "do_sigaction", "sigprocmask", "do_group_exit_signal", "pipe_new",
                "do_futex", "futex_wait", "futex_wake",
            ],
            &[
                "try_atomic_semop", "sem_lock", "sem_unlock", "ipc_lock", "ipc_unlock",
                "ipcperms", "update_queue", "freeary_step", "send_signal", "__send_signal",
                "specific_send_sig_info", "force_sig_info", "handle_signal",
                "setup_rt_frame", "signal_wake_up", "recalc_sigpending",
                "dequeue_signal", "__dequeue_signal", "next_signal", "collect_signal",
                "futex_hash_wait", "queue_me", "unqueue_me", "hash_futex",
            ],
            &[
                "sem_revalidate", "ipc_checkid", "ipc_rcu_getref", "ipc_rcu_putref",
                "sigqueue_alloc", "sigqueue_free", "__sigqueue_alloc", "__sigqueue_free",
                "sig_ignored", "complete_signal", "rm_from_queue", "flush_sigqueue",
                "get_futex_key", "drop_futex_key_refs", "futex_requeue_one",
            ],
        ],
        Subsystem::Net => &[
            &[
                "sock_sendmsg", "sock_recvmsg", "sys_accept_impl", "inet_stream_connect",
                "inet_accept", "inet_sendmsg", "inet_recvmsg", "sock_poll", "sock_ioctl",
                "unix_stream_sendmsg", "unix_stream_recvmsg", "unix_stream_connect",
                "unix_accept", "sock_create", "sock_release", "sock_aio_read",
                "sock_aio_write", "netif_receive_skb", "netif_rx", "net_tx_action_entry",
            ],
            &[
                "tcp_sendmsg", "tcp_recvmsg", "tcp_poll", "tcp_v4_connect",
                "inet_csk_accept", "tcp_close", "tcp_push", "tcp_write_xmit",
                "__tcp_push_pending_frames", "tcp_v4_rcv", "tcp_rcv_established",
                "tcp_data_queue", "tcp_ack", "tcp_send_ack", "tcp_send_delayed_ack",
                "tcp_clean_rtx_queue", "tcp_v4_do_rcv", "tcp_prequeue_process",
                "udp_sendmsg", "udp_recvmsg", "unix_dgram_sendmsg", "unix_dgram_recvmsg",
                "unix_create1", "unix_release_sock", "inet_lro_receive_skb",
                "lro_flush_all", "sock_def_readable", "sock_def_write_space",
                "sk_stream_wait_memory", "sock_wfree", "sock_rfree", "skb_free_datagram",
                "skb_recv_datagram", "skb_copy_datagram_iovec",
            ],
            &[
                "tcp_transmit_skb", "tcp_v4_send_check", "tcp_current_mss",
                "tcp_init_tso_segs", "tcp_event_data_sent", "tcp_rearm_rto",
                "tcp_schedule_loss_probe", "ip_queue_xmit", "ip_local_out", "ip_output",
                "ip_finish_output", "ip_finish_output2", "ip_rcv", "ip_rcv_finish",
                "ip_local_deliver", "ip_local_deliver_finish", "ip_route_input",
                "ip_route_output_flow", "__ip_route_output_key", "rt_hash_code_fn",
                "arp_find_entry", "neigh_resolve_output", "neigh_lookup", "dst_release",
                "dst_hold_fn", "sk_stream_alloc_skb", "tcp_established_options",
                "tcp_options_write", "inet_ehash_locate", "__inet_lookup_established",
                "tcp_parse_options", "tcp_urg_check", "tcp_fast_path_check",
            ],
            &[
                "dev_queue_xmit", "dev_hard_start_xmit", "eth_type_trans", "eth_header",
                "alloc_skb", "__alloc_skb", "kfree_skb", "__kfree_skb", "skb_release_data",
                "skb_put", "skb_pull", "skb_push", "skb_reserve", "skb_clone", "skb_copy",
                "pskb_expand_head", "skb_checksum", "skb_copy_bits",
                "skb_copy_and_csum_bits", "netdev_alloc_skb", "napi_schedule_fn",
                "__napi_complete", "qdisc_run", "__qdisc_run", "pfifo_fast_enqueue",
                "pfifo_fast_dequeue", "netif_schedule_queue", "loopback_xmit",
                "csum_tcpudp_magic_fn", "skb_linearize",
            ],
        ],
        Subsystem::Fs => &[
            &[
                "ext3_file_write_entry", "ext3_readpage", "ext3_writepage", "ext3_lookup",
                "ext3_create", "ext3_unlink", "ext3_mkdir", "ext3_rename", "ext3_readdir",
                "ext3_sync_file", "ext3_write_begin", "ext3_ordered_write_end",
                "ext3_dirty_inode", "ext3_setattr", "ext3_getattr", "ext3_permission_hook",
                "ext3_release_file", "ext3_open_file",
            ],
            &[
                "ext3_get_block", "ext3_get_blocks_handle", "ext3_new_block",
                "ext3_new_blocks", "ext3_free_blocks", "ext3_alloc_branch",
                "ext3_find_entry", "ext3_add_entry", "ext3_delete_entry",
                "ext3_mark_inode_dirty", "ext3_reserve_inode_write",
                "ext3_mark_iloc_dirty", "ext3_get_inode_loc", "ext3_read_inode_bh",
                "ext3_block_to_path", "ext3_get_branch", "ext3_find_near",
                "ext3_find_goal", "ext3_splice_branch", "ext3_truncate_step",
                "ext3_orphan_add", "ext3_orphan_del", "ext3_journalled_writepage_step",
            ],
            &[
                "journal_start", "journal_stop", "journal_extend", "journal_restart",
                "journal_get_write_access", "do_get_write_access",
                "journal_dirty_metadata", "journal_dirty_data", "journal_forget",
                "journal_add_journal_head", "journal_put_journal_head",
                "journal_cancel_revoke", "journal_commit_transaction_step",
                "start_this_handle", "new_handle", "add_transaction_credits",
                "__journal_file_buffer", "__journal_refile_buffer",
                "__journal_unfile_buffer", "journal_write_metadata_buffer",
            ],
            &[
                "block_write_begin", "__block_prepare_write", "block_commit_write",
                "generic_write_end", "block_read_full_page", "mpage_readpage",
                "mpage_writepage", "do_mpage_readpage", "submit_bh", "sync_dirty_buffer",
                "mark_buffer_dirty", "__set_page_dirty_buffers", "create_empty_buffers",
                "alloc_buffer_head", "free_buffer_head", "__getblk", "__find_get_block",
                "__bread", "ll_rw_block", "unmap_underlying_metadata", "brelse_fn",
                "__brelse", "bh_lru_install", "lookup_bh_lru", "init_buffer",
                "end_buffer_read_sync", "end_buffer_write_sync", "try_to_free_buffers",
            ],
        ],
        Subsystem::Block => &[
            &[
                "generic_make_request", "submit_bio", "blk_backing_dev_unplug",
                "generic_unplug_device", "blk_run_queue", "blk_start_queueing",
                "elv_next_request", "blk_complete_request_entry",
            ],
            &[
                "__make_request", "__generic_unplug_device", "blk_plug_device",
                "blk_remove_plug", "elv_merge", "elv_insert", "__elv_add_request",
                "elv_rqhash_find", "elv_rqhash_add", "attempt_back_merge",
                "ll_back_merge_fn", "blk_rq_map_sg", "get_request", "get_request_wait",
                "freed_request", "blk_alloc_request", "blk_rq_init",
                "cfq_insert_request", "cfq_dispatch_requests", "cfq_set_request",
                "cfq_merge", "cfq_completed_request", "cfq_service_tree_add",
                "elv_dispatch_sort", "elv_completed_request", "blk_queue_bounce_check",
            ],
            &[
                "scsi_request_fn", "scsi_dispatch_cmd", "scsi_init_io", "scsi_done_entry",
                "scsi_softirq_done", "scsi_io_completion", "scsi_end_request",
                "scsi_next_command", "scsi_run_queue", "scsi_get_command",
                "scsi_put_command", "scsi_setup_fs_cmnd", "scsi_prep_state_check",
                "sd_prep_fn", "sd_done", "ata_qc_issue_stub", "ahci_qc_issue_stub",
                "ahci_interrupt_stub",
            ],
            &[
                "bio_alloc", "bio_alloc_bioset", "bio_put", "bio_free", "bio_endio",
                "bio_add_page", "__bio_add_page", "bio_get_nr_vecs", "bvec_alloc_bs",
                "bvec_free_bs", "blk_rq_timed_out_timer_fn", "blk_add_timer",
                "blk_delete_timer", "end_that_request_data", "__end_that_request_first",
                "update_io_ticks", "disk_map_sector_rcu", "part_round_stats",
                "blk_account_io_completion", "blk_account_io_done",
            ],
        ],
        Subsystem::Irq => &[
            &[
                "do_IRQ", "smp_apic_timer_interrupt", "do_softirq", "__do_softirq",
                "irq_enter", "irq_exit", "net_rx_action", "net_tx_action",
                "run_timer_softirq", "tasklet_action", "blk_done_softirq", "rcu_softirq",
            ],
            &[
                "handle_irq", "handle_edge_irq", "handle_fasteoi_irq", "handle_IRQ_event",
                "note_interrupt", "ack_apic_edge", "ack_apic_level", "mask_ack_irq_fn",
                "irq_to_desc", "raise_softirq", "raise_softirq_irqoff", "wakeup_softirqd",
                "__tasklet_schedule", "tasklet_hi_action", "ksoftirqd_should_run",
                "local_apic_timer_interrupt",
            ],
            &[
                "run_local_timers", "update_process_times", "hrtimer_interrupt",
                "hrtimer_run_queues", "tick_sched_timer", "tick_handle_periodic",
                "account_system_time", "account_user_time", "account_idle_time",
                "run_posix_cpu_timers", "__run_timers", "cascade_timers",
                "internal_add_timer", "lock_timer_base", "mod_timer", "add_timer",
                "del_timer", "detach_timer", "call_timer_fn", "process_timeout",
                "hrtimer_start_range_ns", "__hrtimer_start_range_ns", "enqueue_hrtimer",
                "__remove_hrtimer", "hrtimer_forward", "apic_write_stub", "ack_APIC_irq",
            ],
        ],
        Subsystem::Sched => &[
            &[
                "schedule", "do_fork", "do_exit", "do_wait", "do_execve", "kernel_thread",
                "wake_up_process", "wake_up_new_task", "__wake_up", "complete",
                "wait_for_completion", "schedule_timeout", "yield_entry", "io_schedule",
                "cond_resched_entry", "preempt_schedule",
            ],
            &[
                "copy_process", "dup_task_struct", "copy_files", "copy_fs", "copy_mm",
                "copy_sighand", "copy_signal", "copy_thread", "alloc_pid", "free_pid",
                "exit_notify", "release_task", "forget_original_parent", "exit_files",
                "exit_fs", "exit_sem", "__exit_signal", "wait_task_zombie",
                "wait_consider_task", "search_binary_handler", "load_elf_binary",
                "flush_old_exec", "setup_arg_pages", "context_switch", "pick_next_task",
                "pick_next_task_fair", "put_prev_task_fair", "try_to_wake_up",
                "__wake_up_common", "sched_fork", "sched_exec",
            ],
            &[
                "enqueue_task_fair", "dequeue_task_fair", "enqueue_entity",
                "dequeue_entity", "update_curr", "update_rq_clock", "set_next_entity",
                "pick_next_entity", "check_preempt_wakeup", "check_preempt_curr",
                "resched_task", "activate_task", "deactivate_task", "effective_load",
                "task_tick_fair", "entity_tick", "scheduler_tick", "sched_clock_tick",
                "update_cpu_load", "calc_load_account_active", "load_balance_tick",
                "idle_balance", "find_busiest_group", "move_tasks_step",
                "prepare_to_wait", "finish_wait", "autoremove_wake_function",
                "default_wake_function", "add_wait_queue", "remove_wait_queue",
                "prepare_task_switch", "finish_task_switch",
            ],
            &[
                "__switch_to", "switch_mm", "enter_lazy_tlb", "native_load_sp0",
                "native_load_tls", "update_min_vruntime", "__enqueue_entity",
                "__dequeue_entity", "account_entity_enqueue", "account_entity_dequeue",
                "place_entity", "sched_slice", "sched_vslice", "calc_delta_fair",
                "calc_delta_mine", "hrtick_start_fair", "cpuacct_charge",
                "sched_info_queued", "sched_info_switch", "set_task_cpu",
                "task_rq_lock", "task_rq_unlock", "double_rq_lock", "double_rq_unlock",
            ],
        ],
        Subsystem::Mm => &[
            &[
                "do_page_fault", "handle_mm_fault", "do_mmap_pgoff", "do_munmap",
                "do_brk", "sys_mprotect_impl", "get_user_pages", "do_mremap",
                "vm_mmap_pgoff", "expand_stack",
            ],
            &[
                "__do_fault", "do_anonymous_page", "do_wp_page", "do_swap_page",
                "do_linear_fault", "filemap_fault", "mmap_region", "find_vma",
                "find_vma_prepare", "find_vma_prev", "vma_adjust", "vma_merge",
                "split_vma", "insert_vm_struct", "unmap_region", "unmap_vmas",
                "zap_page_range", "copy_page_range", "dup_mm", "mm_init_fn", "mmput",
                "exit_mmap", "anon_vma_prepare", "anon_vma_link", "vm_normal_page",
                "generic_file_mmap", "vma_link", "remove_vma", "may_expand_vm",
                "acct_stack_growth",
            ],
            &[
                "find_get_page", "find_lock_page", "add_to_page_cache_lru",
                "add_to_page_cache_locked", "remove_from_page_cache", "unlock_page",
                "__lock_page", "wait_on_page_bit", "wake_up_page", "mark_page_accessed",
                "lru_cache_add_active", "lru_cache_add_file", "activate_page",
                "page_add_new_anon_rmap", "page_add_file_rmap", "page_remove_rmap",
                "page_referenced", "try_to_unmap_one_step", "shrink_page_list_step",
                "page_cache_sync_readahead", "page_cache_async_readahead",
                "ondemand_readahead", "ra_submit", "read_pages", "grab_cache_page_write_begin",
                "pagevec_lru_add_fn", "release_pages", "pagecache_get_page",
            ],
            &[
                "__alloc_pages_internal", "get_page_from_freelist", "buffered_rmqueue",
                "rmqueue_bulk", "__rmqueue", "free_hot_cold_page", "__free_pages",
                "free_pages_bulk", "__page_cache_release", "put_page", "get_page_fn",
                "page_zone_fn", "zone_watermark_ok", "wakeup_kswapd", "try_to_free_pages_step",
                "pte_alloc_one", "pte_alloc_map_lock", "pmd_alloc_fn", "pud_alloc_fn",
                "pgd_alloc_fn", "pte_offset_map_lock_fn", "flush_tlb_page", "flush_tlb_mm",
                "flush_tlb_range", "native_flush_tlb_single", "zap_pte_range",
                "copy_pte_range", "copy_one_pte", "set_pte_at_fn", "page_table_range_init",
                "__inc_zone_page_state", "__dec_zone_page_state", "zone_statistics",
            ],
        ],
        Subsystem::Security => &[
            &[
                "security_file_permission", "security_inode_permission",
                "security_inode_create", "security_inode_unlink", "security_inode_mkdir",
                "security_socket_sendmsg", "security_socket_recvmsg",
                "security_socket_create", "security_socket_accept",
                "security_socket_connect", "security_task_create", "security_task_kill",
                "security_vm_enough_memory", "security_file_lock", "security_file_fcntl",
                "security_sem_semop", "security_file_mmap", "security_bprm_check",
            ],
            &[
                "cap_file_permission", "cap_inode_permission", "cap_vm_enough_memory",
                "cap_task_kill_check", "cap_capable", "cap_socket_create_check",
                "cap_bprm_set_security", "cap_capget", "cap_capset_check",
                "security_ops_dispatch", "cred_has_capability",
            ],
        ],
        Subsystem::Time => &[
            &[
                "ktime_get", "ktime_get_ts", "getnstimeofday", "do_gettimeofday",
                "current_kernel_time", "jiffies_to_timeval", "jiffies_to_usecs_fn",
                "timespec_to_ktime_fn", "get_seconds_fn", "sched_clock",
            ],
            &[
                "clocksource_read_tsc", "native_read_tsc", "cycles_2_ns",
                "timekeeping_get_ns", "update_wall_time_step", "update_xtime_cache",
                "set_normalized_timespec", "timespec_add_ns_fn", "ns_to_timeval_fn",
                "monotonic_to_bootbased", "tsc_khz_read",
            ],
        ],
        Subsystem::Slab => &[
            &[
                "__kmalloc", "kfree", "kmem_cache_alloc", "kmem_cache_free",
                "kmem_cache_alloc_node", "kmem_cache_zalloc_fn", "krealloc_fn",
                "kstrdup_fn", "kmemdup_fn", "__kzalloc",
            ],
            &[
                "cache_alloc_refill", "cache_flusharray", "cache_grow", "cache_reap_step",
                "free_block", "slab_get_obj", "slab_put_obj", "check_poison_obj_stub",
                "kmem_getpages", "kmem_freepages", "transfer_objects",
                "____cache_alloc", "____cache_alloc_node", "cache_free_alien",
                "drain_array_step", "ac_get_obj", "ac_put_obj",
            ],
        ],
        Subsystem::Locking => &[
            &[
                "_spin_lock", "_spin_unlock", "_spin_lock_irqsave", "_spin_unlock_irqrestore",
                "_spin_lock_irq", "_spin_unlock_irq", "_spin_lock_bh", "_spin_unlock_bh",
                "_read_lock", "_read_unlock", "_write_lock", "_write_unlock",
                "mutex_lock", "mutex_unlock", "down_read", "up_read", "down_write",
                "up_write", "local_bh_disable", "local_bh_enable",
                "add_preempt_count", "sub_preempt_count",
            ],
            &[
                "__mutex_lock_slowpath", "__mutex_unlock_slowpath", "mutex_spin_on_owner",
                "rwsem_down_read_failed", "rwsem_down_write_failed", "rwsem_wake",
                "__down_read", "__up_read", "__down_write", "__up_write",
                "_atomic_dec_and_lock", "__rcu_read_lock_fn", "__rcu_read_unlock_fn",
                "call_rcu", "rcu_process_callbacks", "rcu_check_callbacks",
                "__rcu_process_callbacks", "rcu_do_batch", "force_quiescent_state_fn",
                "lock_acquire_stub", "lock_release_stub",
            ],
        ],
        Subsystem::Util => &[
            &[
                "memcpy", "memset", "memcmp", "memmove", "strlen", "strcmp", "strncmp",
                "strcpy", "strncpy", "strlcpy", "strchr", "strsep_fn", "snprintf",
                "vsnprintf", "sprintf_fn", "copy_to_user", "copy_from_user",
                "copy_user_generic", "strncpy_from_user", "strnlen_user", "clear_user",
                "__get_user_4", "__put_user_4",
            ],
            &[
                "radix_tree_lookup", "radix_tree_insert", "radix_tree_delete",
                "radix_tree_gang_lookup", "radix_tree_tag_set", "radix_tree_tag_clear",
                "radix_tree_preload", "rb_insert_color", "rb_erase", "rb_next", "rb_prev",
                "rb_first", "rb_last", "idr_find", "idr_get_new", "idr_remove",
                "idr_pre_get", "find_next_bit", "find_first_bit", "find_next_zero_bit",
                "find_first_zero_bit", "bitmap_weight_fn", "hweight32_fn", "hweight64_fn",
                "csum_partial", "csum_partial_copy_generic", "crc32_le", "crc32c_fn",
                "kref_get", "kref_put", "kobject_get", "kobject_put", "kobject_uevent_stub",
                "prio_tree_insert", "prio_tree_remove", "prio_tree_next",
                "hash_long_fn", "hash_64_fn", "jhash_fn", "jhash2_fn",
                "list_sort_fn", "sort_fn", "bsearch_fn", "get_random_bytes_stub",
            ],
        ],
    }
}

/// Per-subsystem generator vocabulary: (prefixes, stems, suffixes).
/// Filler names are formed as `{prefix}{stem}{suffix}` with deterministic
/// selection; collisions get a numeric tail.
pub(crate) fn vocabulary(
    subsystem: Subsystem,
) -> (&'static [&'static str], &'static [&'static str], &'static [&'static str]) {
    const SUFFIXES: &[&str] = &[
        "", "_slow", "_fast", "_locked", "_unlocked", "_nolock", "_rcu", "_atomic",
        "_one", "_all", "_range", "_begin", "_end", "_commit", "_prepare", "_finish",
        "_common", "_internal", "_helper", "_nowait", "_sync", "_async", "_bulk",
        "_cached", "_uncached", "_irq", "_noirq", "_check", "_update", "_init",
    ];
    match subsystem {
        Subsystem::Syscall => (
            &["sys_", "compat_sys_", "do_", "__"],
            &[
                "arch_prctl", "sysctl", "getrlimit", "setrlimit", "umask", "uname",
                "sysinfo", "personality", "prctl", "capget", "capset", "times",
                "getrusage", "getgroups", "setgroups", "setpgid", "getsid", "setsid",
                "getpriority", "setpriority", "sigaltstack", "sigpending", "sigsuspend",
                "alarm", "pause", "setitimer", "getitimer", "utime", "access", "chdir",
                "fchdir", "chroot", "chmod", "fchmod", "chown", "fchown", "truncate",
                "ftruncate", "link", "symlink", "readlink", "mknod", "statfs", "fstatfs",
            ],
            SUFFIXES,
        ),
        Subsystem::Vfs => (
            &["", "__", "do_", "vfs_", "generic_"],
            &[
                "dcache_scan", "inode_walk", "path_validate", "mount_traverse",
                "namei_step", "dentry_hash", "inode_dirty", "writeback_single",
                "sb_sync", "file_table_scan", "fd_expand", "ioctx_lookup", "aio_submit",
                "aio_complete", "splice_to_pipe", "splice_from_pipe", "pipe_buf_map",
                "pipe_buf_release", "epoll_ctl_walk", "epoll_transfer", "seq_printf_pad",
                "seq_read_iter", "super_lookup", "sb_lock_walk", "fs_may_remount",
                "inotify_queue", "inotify_handle", "dnotify_parent", "lease_break",
                "lease_modify", "lock_get_status", "mount_hash", "mnt_flush",
                "path_release", "follow_link_step", "page_symlink", "readdir_fill",
                "dir_emit_step", "file_ra_state", "ra_adjust",
            ],
            SUFFIXES,
        ),
        Subsystem::Ipc => (
            &["", "__", "ipc_", "sig_", "sem_", "msg_", "shm_"],
            &[
                "queue_wakeup", "undo_list_walk", "perm_check", "ns_lookup", "id_alloc",
                "id_free", "array_grow", "array_shrink", "pending_scan", "notify_send",
                "timedwait_step", "frame_setup", "frame_restore", "stack_expand",
                "handler_invoke", "mask_update", "pending_retarget", "queue_flush",
                "shp_attach", "shp_detach", "msgq_send", "msgq_receive",
            ],
            SUFFIXES,
        ),
        Subsystem::Net => (
            &["", "__", "tcp_", "ip_", "sock_", "skb_", "net_", "inet_", "eth_", "dev_"],
            &[
                "cwnd_adjust", "rtt_estimate", "sack_process", "fack_count",
                "retrans_queue", "wmem_schedule", "rmem_schedule", "moderate_rcvbuf",
                "frag_reassemble", "route_hash", "neigh_update", "pmtu_discover",
                "keepalive_timer", "delack_timer", "persist_timer", "syn_queue_add",
                "accept_queue_pop", "listen_overflow", "window_update", "zerocopy_map",
                "gro_merge", "gso_segment", "csum_validate", "header_build",
                "header_parse", "addr_compare", "port_rover", "bind_conflict",
                "ehash_insert", "ehash_remove", "bhash_lookup", "timewait_schedule",
                "mtu_probe", "nagle_check", "cork_release", "poll_wait_net",
                "backlog_rcv", "prequeue_add", "ofo_queue_insert", "rcvbuf_collapse",
            ],
            SUFFIXES,
        ),
        Subsystem::Fs => (
            &["ext3_", "journal_", "jbd_", "__", ""],
            &[
                "bitmap_load", "bitmap_scan", "group_desc_read", "inode_bitmap",
                "block_bitmap", "reservation_window", "rsv_alloc", "rsv_discard",
                "dir_hash", "htree_probe", "htree_split", "extent_probe", "xattr_get",
                "xattr_set", "xattr_cache", "acl_check", "acl_load", "quota_charge",
                "quota_release", "orphan_scan", "resize_step", "revoke_record",
                "checkpoint_push", "checkpoint_drop", "log_space_wait", "log_do_commit",
                "buffer_trigger", "handle_credit", "sb_feature_check", "balloc_debug",
            ],
            SUFFIXES,
        ),
        Subsystem::Block => (
            &["blk_", "elv_", "cfq_", "scsi_", "bio_", "__", "sd_", "disk_"],
            &[
                "queue_drain", "queue_congest", "rq_merge", "rq_sort", "rq_account",
                "tag_alloc", "tag_free", "segment_count", "bounce_map", "integrity_check",
                "timeout_scan", "softirq_raise", "cmd_build", "sense_decode",
                "device_probe_step", "partition_remap", "stat_accum", "iosched_tick",
                "dispatch_budget", "service_shift", "queue_split", "congestion_wait_step",
                "barrier_flush", "ordered_seq",
            ],
            SUFFIXES,
        ),
        Subsystem::Irq => (
            &["", "__", "irq_", "softirq_", "timer_", "hrtimer_", "apic_", "tick_"],
            &[
                "vector_alloc", "vector_free", "affinity_set", "migrate_step", "poll_spurious",
                "desc_walk", "wheel_cascade", "wheel_collect", "slack_estimate",
                "base_switch", "clockevent_program", "broadcast_mask", "oneshot_program",
                "jiffies_update", "pending_mask", "thread_wake", "eoi_send",
                "storm_detect", "latency_trace",
            ],
            SUFFIXES,
        ),
        Subsystem::Sched => (
            &["", "__", "sched_", "task_", "rq_", "cfs_", "rt_", "wake_"],
            &[
                "vruntime_scale", "load_update", "weight_recalc", "domain_walk",
                "group_share", "sleeper_credit", "buddy_pick", "throttle_check",
                "bandwidth_refill", "migrate_degrade", "affine_test", "cache_hot_test",
                "cpu_pick_idle", "nohz_kick", "stat_account", "prio_recalc",
                "boost_apply", "burst_track", "latency_probe", "runqueue_shuffle",
                "cpuset_filter", "cgroup_charge",
            ],
            SUFFIXES,
        ),
        Subsystem::Mm => (
            &["", "__", "page_", "vma_", "pte_", "zone_", "anon_", "swap_", "shmem_"],
            &[
                "lru_rotate", "lru_isolate", "reclaim_scan", "writeback_throttle",
                "dirty_balance", "dirty_ratelimit", "wmark_check", "compaction_step",
                "migrate_entry", "mlock_apply", "unevictable_move", "refault_track",
                "fault_around", "numa_hint", "policy_lookup", "mempolicy_rebind",
                "pgtable_walk", "huge_split", "cow_break", "readahead_window",
                "cache_charge", "cache_uncharge", "pcp_refill", "pcp_drain",
                "buddy_merge", "buddy_split", "watermark_boost",
            ],
            SUFFIXES,
        ),
        Subsystem::Security => (
            &["security_", "cap_", "lsm_", "cred_"],
            &[
                "ptrace_check", "settime_check", "netlink_check", "msg_perm",
                "shm_perm", "sem_perm", "key_perm", "getprocattr", "setprocattr",
                "secid_lookup", "context_compute", "audit_record",
            ],
            SUFFIXES,
        ),
        Subsystem::Time => (
            &["", "__", "ktime_", "clock_", "ntp_", "tk_"],
            &[
                "offset_fold", "shift_adjust", "mult_update", "error_accum",
                "leap_check", "freq_adjust", "wall_to_mono", "raw_advance",
                "vsyscall_update", "resolution_get",
            ],
            SUFFIXES,
        ),
        Subsystem::Slab => (
            &["", "__", "kmem_", "slab_", "cache_"],
            &[
                "colour_next", "order_calc", "objcount_tune", "shared_drain",
                "alien_drain", "node_refill", "partial_scan", "freelist_walk",
                "ctor_invoke", "poison_fill", "redzone_check", "shrink_node",
            ],
            SUFFIXES,
        ),
        Subsystem::Locking => (
            &["", "__", "rcu_", "mutex_", "rwsem_", "spin_", "seq_"],
            &[
                "owner_spin", "waiter_queue", "waiter_wake", "grace_advance",
                "callback_drain", "batch_limit", "qlen_track", "contention_probe",
                "fastpath_try", "slowpath_enter", "seqcount_retry", "ticket_advance",
            ],
            SUFFIXES,
        ),
        Subsystem::Util => (
            &["", "__", "str", "mem", "bitmap_", "list_", "hash_", "vsprintf_"],
            &[
                "scan_step", "format_field", "digit_emit", "pad_emit", "token_next",
                "span_measure", "region_copy", "region_fill", "table_grow",
                "table_probe", "chain_walk", "node_rotate", "entropy_mix",
                "checksum_fold", "escape_emit", "parse_int", "parse_args_step",
                "cmp_generic", "swap_generic", "heapify_step",
            ],
            SUFFIXES,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_subsystem_has_anchors_and_vocabulary() {
        for s in Subsystem::ALL {
            let a = anchors(s);
            assert!(!a.is_empty(), "{s} has no anchor layers");
            assert!(!a[0].is_empty(), "{s} has no layer-0 anchors");
            let (prefixes, stems, suffixes) = vocabulary(s);
            assert!(!prefixes.is_empty() && !stems.is_empty() && !suffixes.is_empty());
        }
    }

    #[test]
    fn anchor_names_are_globally_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in Subsystem::ALL {
            for layer in anchors(s) {
                for name in *layer {
                    assert!(seen.insert(*name), "duplicate anchor `{name}` (in {s})");
                }
            }
        }
        // Sanity: a healthy number of hand-authored anchors.
        assert!(seen.len() > 500, "only {} anchors", seen.len());
    }

    #[test]
    fn well_known_symbols_exist() {
        let vfs: Vec<&str> = anchors(Subsystem::Vfs).iter().flat_map(|l| l.iter().copied()).collect();
        assert!(vfs.contains(&"vfs_read"));
        let net: Vec<&str> = anchors(Subsystem::Net).iter().flat_map(|l| l.iter().copied()).collect();
        assert!(net.contains(&"tcp_sendmsg"));
        assert!(net.contains(&"netif_receive_skb"));
    }
}
