use serde::{Deserialize, Serialize};

use crate::{FunctionId, KernelError, SymbolTable};

/// One potential call site: when the caller executes, with probability
/// `probability` it invokes `callee` between 1 and `max_repeats` times
/// (uniformly chosen).
///
/// Stochastic edges are what give two executions of the same workload
/// *similar but not identical* signatures — the same role run-to-run
/// nondeterminism plays on a real kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CallEdge {
    /// Function invoked by this call site.
    pub callee: FunctionId,
    /// Probability the call site fires on a given execution, in `(0, 1]`.
    pub probability: f32,
    /// Maximum number of consecutive invocations (>= 1).
    pub max_repeats: u8,
}

impl CallEdge {
    /// An unconditional single call.
    pub fn always(callee: FunctionId) -> Self {
        CallEdge {
            callee,
            probability: 1.0,
            max_repeats: 1,
        }
    }

    /// A call that fires with probability `p` (clamped to `(0, 1]`).
    pub fn with_probability(callee: FunctionId, p: f32) -> Self {
        CallEdge {
            callee,
            probability: p.clamp(f32::EPSILON, 1.0),
            max_repeats: 1,
        }
    }

    /// Sets the repeat bound.
    pub fn repeats(mut self, max_repeats: u8) -> Self {
        self.max_repeats = max_repeats.max(1);
        self
    }
}

/// The static call graph over the kernel's symbol table.
///
/// Indexed by caller id; guaranteed acyclic (checked by
/// [`CallGraph::verify_acyclic`], which the builder runs) so that call-tree
/// walks always terminate.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CallGraph {
    edges: Vec<Vec<CallEdge>>,
}

impl CallGraph {
    /// Creates an empty graph for `num_functions` functions.
    pub fn new(num_functions: usize) -> Self {
        CallGraph {
            edges: vec![Vec::new(); num_functions],
        }
    }

    /// Number of callers the graph covers.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph covers no functions.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Adds a call site.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range (graph construction is internal;
    /// bad ids are a builder bug).
    pub fn add_edge(&mut self, caller: FunctionId, edge: CallEdge) {
        assert!(
            (edge.callee.index()) < self.edges.len(),
            "callee {} out of range",
            edge.callee
        );
        self.edges[caller.index()].push(edge);
    }

    /// Call sites of `caller`, in insertion order.
    pub fn callees(&self, caller: FunctionId) -> &[CallEdge] {
        &self.edges[caller.index()]
    }

    /// Total number of call sites in the graph.
    pub fn num_edges(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Expected number of dynamic calls a single execution of `entry`
    /// produces (including `entry` itself), ignoring repeat sampling noise.
    ///
    /// Used by the builder to keep per-operation call volumes realistic.
    pub fn expected_calls(&self, entry: FunctionId) -> f64 {
        // Memoised DFS over the DAG.
        fn go(graph: &CallGraph, f: FunctionId, memo: &mut [f64]) -> f64 {
            let cached = memo[f.index()];
            if cached >= 0.0 {
                return cached;
            }
            // Mark to guard against accidental cycles (returns 1.0 for
            // self-recursive references rather than hanging).
            let mut total = 1.0;
            for e in &graph.edges[f.index()] {
                let mean_reps = (1.0 + e.max_repeats as f64) / 2.0;
                total += e.probability as f64 * mean_reps * go(graph, e.callee, memo);
            }
            memo[f.index()] = total;
            total
        }
        let mut memo = vec![-1.0; self.edges.len()];
        go(self, entry, &mut memo)
    }

    /// Verifies the graph is a DAG.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::CyclicCallGraph`] naming a function on a
    /// cycle if one exists.
    pub fn verify_acyclic(&self, symbols: &SymbolTable) -> Result<(), KernelError> {
        // Iterative three-colour DFS.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let n = self.edges.len();
        let mut colour = vec![Colour::White; n];
        for start in 0..n {
            if colour[start] != Colour::White {
                continue;
            }
            // (node, next edge index)
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            colour[start] = Colour::Grey;
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                if *next < self.edges[node].len() {
                    let callee = self.edges[node][*next].callee.index();
                    *next += 1;
                    match colour[callee] {
                        Colour::White => {
                            colour[callee] = Colour::Grey;
                            stack.push((callee, 0));
                        }
                        Colour::Grey => {
                            let name = symbols
                                .function(FunctionId(callee as u32))
                                .map(|f| f.name.clone())
                                .unwrap_or_else(|_| format!("fn#{callee}"));
                            return Err(KernelError::CyclicCallGraph { function: name });
                        }
                        Colour::Black => {}
                    }
                } else {
                    colour[node] = Colour::Black;
                    stack.pop();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Nanos, Subsystem};

    fn symbols(n: usize) -> SymbolTable {
        let mut t = SymbolTable::new();
        for i in 0..n {
            t.push(
                format!("f{i}"),
                0x1000 + i as u64 * 0x10,
                Subsystem::Util,
                0,
                Nanos(10),
            );
        }
        t
    }

    #[test]
    fn edges_are_recorded_in_order() {
        let mut g = CallGraph::new(3);
        g.add_edge(FunctionId(0), CallEdge::always(FunctionId(1)));
        g.add_edge(
            FunctionId(0),
            CallEdge::with_probability(FunctionId(2), 0.5),
        );
        assert_eq!(g.callees(FunctionId(0)).len(), 2);
        assert_eq!(g.callees(FunctionId(0))[0].callee, FunctionId(1));
        assert_eq!(g.callees(FunctionId(1)).len(), 0);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn probability_is_clamped() {
        let e = CallEdge::with_probability(FunctionId(0), 2.0);
        assert_eq!(e.probability, 1.0);
        let e = CallEdge::with_probability(FunctionId(0), -1.0);
        assert!(e.probability > 0.0);
        let e = CallEdge::always(FunctionId(0)).repeats(0);
        assert_eq!(e.max_repeats, 1);
    }

    #[test]
    fn acyclic_graph_verifies() {
        let t = symbols(4);
        let mut g = CallGraph::new(4);
        g.add_edge(FunctionId(0), CallEdge::always(FunctionId(1)));
        g.add_edge(FunctionId(1), CallEdge::always(FunctionId(2)));
        g.add_edge(FunctionId(0), CallEdge::always(FunctionId(3)));
        g.add_edge(FunctionId(3), CallEdge::always(FunctionId(2)));
        assert!(g.verify_acyclic(&t).is_ok());
    }

    #[test]
    fn cycle_is_detected_and_named() {
        let t = symbols(3);
        let mut g = CallGraph::new(3);
        g.add_edge(FunctionId(0), CallEdge::always(FunctionId(1)));
        g.add_edge(FunctionId(1), CallEdge::always(FunctionId(2)));
        g.add_edge(FunctionId(2), CallEdge::always(FunctionId(0)));
        let err = g.verify_acyclic(&t).unwrap_err();
        assert!(matches!(err, KernelError::CyclicCallGraph { .. }));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let t = symbols(1);
        let mut g = CallGraph::new(1);
        g.add_edge(FunctionId(0), CallEdge::always(FunctionId(0)));
        assert!(g.verify_acyclic(&t).is_err());
    }

    #[test]
    fn expected_calls_counts_weighted_subtree() {
        let mut g = CallGraph::new(3);
        // 0 -> 1 always; 0 -> 2 with p=0.5; 1 -> 2 always x(1..=3 reps, mean 2)
        g.add_edge(FunctionId(0), CallEdge::always(FunctionId(1)));
        g.add_edge(
            FunctionId(0),
            CallEdge::with_probability(FunctionId(2), 0.5),
        );
        g.add_edge(FunctionId(1), CallEdge::always(FunctionId(2)).repeats(3));
        // E[2] = 1; E[1] = 1 + 2*1 = 3; E[0] = 1 + 3 + 0.5 = 4.5
        assert!((g.expected_calls(FunctionId(0)) - 4.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_callee_panics() {
        let mut g = CallGraph::new(1);
        g.add_edge(FunctionId(0), CallEdge::always(FunctionId(5)));
    }
}
