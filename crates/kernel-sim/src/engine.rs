use std::collections::HashMap;
use std::ops::AddAssign;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{
    CallGraph, CpuId, CpuState, Debugfs, FunctionId, FunctionTracer, KernelError, KernelImage,
    KernelImageBuilder, KernelModule, KernelOp, ModuleOp, Nanos, NullTracer, SimClock, SymbolTable,
};

/// Configuration of a simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Number of logical CPUs. Default 16, like the paper's dual-socket
    /// Nehalem R710 with hyperthreads.
    pub num_cpus: usize,
    /// Seed for run-time stochastic branching (page-cache hits, lock
    /// slow paths, ...). Two kernels with equal image and seed behave
    /// identically.
    pub seed: u64,
    /// Timer interrupt rate (Hz); 0 disables ticks. Default 1000
    /// (`CONFIG_HZ_1000`, as in the paper's 2.6.28 era).
    pub timer_hz: u32,
    /// Seed of the kernel *image* (symbol/edge generation). Different
    /// image seeds model different kernel builds.
    pub image_seed: u64,
}

impl Default for KernelConfig {
    fn default() -> Self {
        // Grouped to read as kernel version 2.6.28, not a byte count.
        #[allow(clippy::unusual_byte_groupings)]
        KernelConfig {
            num_cpus: 16,
            seed: 1,
            timer_hz: 1000,
            image_seed: 0x2_6_28,
        }
    }
}

/// Execution statistics for one or more operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ExecStats {
    /// Instrumented kernel function calls performed.
    pub calls: u64,
    /// Simulated time consumed (base costs + tracer overhead + module
    /// internal time).
    pub time: Nanos,
}

impl AddAssign for ExecStats {
    fn add_assign(&mut self, rhs: ExecStats) {
        self.calls += rhs.calls;
        self.time += rhs.time;
    }
}

/// A loaded module with its handler entries resolved to function ids.
#[derive(Debug, Clone)]
struct LoadedModule {
    module: KernelModule,
    resolved: HashMap<ModuleOp, Vec<(FunctionId, f64)>>,
    internal: HashMap<ModuleOp, Nanos>,
}

/// The simulated machine: a monolithic kernel with per-CPU state, a
/// stochastic call-tree walker, loadable modules, a pluggable
/// [`FunctionTracer`], and a simulated clock.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use fmeter_kernel_sim::{CountingTracer, CpuId, Kernel, KernelConfig, KernelOp};
///
/// let mut kernel = Kernel::new(KernelConfig::default())?;
/// let tracer = Arc::new(CountingTracer::new(kernel.num_functions()));
/// kernel.set_tracer(tracer.clone());
///
/// let stats = kernel.run_op(CpuId(0), KernelOp::Read { bytes: 4096 })?;
/// assert!(stats.calls > 0);
/// assert_eq!(tracer.total(), stats.calls);
/// # Ok::<(), fmeter_kernel_sim::KernelError>(())
/// ```
pub struct Kernel {
    symbols: Arc<SymbolTable>,
    callgraph: Arc<CallGraph>,
    cpus: Vec<CpuState>,
    clock: SimClock,
    rng: SmallRng,
    tracer: Arc<dyn FunctionTracer>,
    modules: Vec<LoadedModule>,
    debugfs: Debugfs,
    timer_period: Option<Nanos>,
    next_tick: Nanos,
    total_ops: u64,
    config: KernelConfig,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("functions", &self.symbols.len())
            .field("cpus", &self.cpus.len())
            .field("tracer", &self.tracer.name())
            .field("modules", &self.modules.len())
            .field("now", &self.clock.now())
            .finish()
    }
}

impl Kernel {
    /// Boots a machine with a freshly built kernel image.
    ///
    /// # Errors
    ///
    /// Propagates image construction failures (see
    /// [`KernelImageBuilder::build`]).
    pub fn new(config: KernelConfig) -> Result<Self, KernelError> {
        let image = KernelImageBuilder::new().seed(config.image_seed).build()?;
        Ok(Self::from_image(image, config))
    }

    /// Boots a machine from a pre-built image (lets tests and benches
    /// share one image across many kernels).
    pub fn from_image(image: KernelImage, config: KernelConfig) -> Self {
        let timer_period = if config.timer_hz == 0 {
            None
        } else {
            Some(Nanos(1_000_000_000 / config.timer_hz as u64))
        };
        let symbols = Arc::new(image.symbols);
        let mut debugfs = Debugfs::new();
        // /proc/kallsyms-style symbol map: how user space resolves the
        // addresses the Fmeter export is keyed by.
        let kallsyms_src = Arc::clone(&symbols);
        debugfs.register(
            "kallsyms",
            Arc::new(move || {
                let mut out = String::with_capacity(kallsyms_src.len() * 40);
                for f in kallsyms_src.iter() {
                    out.push_str(&format!("{:016x} t {}\n", f.address, f.name));
                }
                out
            }),
        );
        Kernel {
            symbols,
            callgraph: Arc::new(image.callgraph),
            cpus: (0..config.num_cpus.max(1))
                .map(|_| CpuState::new())
                .collect(),
            clock: SimClock::new(),
            rng: SmallRng::seed_from_u64(config.seed),
            tracer: Arc::new(NullTracer),
            modules: Vec::new(),
            debugfs,
            timer_period,
            next_tick: timer_period.unwrap_or(Nanos(u64::MAX)),
            total_ops: 0,
            config,
        }
    }

    /// The kernel's symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// A shared handle to the symbol table.
    pub fn symbols_arc(&self) -> Arc<SymbolTable> {
        Arc::clone(&self.symbols)
    }

    /// The static call graph.
    pub fn callgraph(&self) -> &CallGraph {
        &self.callgraph
    }

    /// Number of instrumented functions (signature dimensionality).
    pub fn num_functions(&self) -> usize {
        self.symbols.len()
    }

    /// Number of simulated CPUs.
    pub fn num_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// The machine configuration.
    pub fn config(&self) -> KernelConfig {
        self.config
    }

    /// Installs a tracer ("patching the kernel"). The previous tracer is
    /// returned so callers can flip instrumentation on and off.
    pub fn set_tracer(&mut self, tracer: Arc<dyn FunctionTracer>) -> Arc<dyn FunctionTracer> {
        std::mem::replace(&mut self.tracer, tracer)
    }

    /// The installed tracer.
    pub fn tracer(&self) -> &Arc<dyn FunctionTracer> {
        &self.tracer
    }

    /// Current simulated time since boot.
    pub fn now(&self) -> Nanos {
        self.clock.now()
    }

    /// Per-CPU state (read-only).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::CpuOutOfRange`] for an invalid id.
    pub fn cpu(&self, cpu: CpuId) -> Result<&CpuState, KernelError> {
        self.cpus.get(cpu.0).ok_or(KernelError::CpuOutOfRange {
            cpu: cpu.0,
            num_cpus: self.cpus.len(),
        })
    }

    /// Total operations executed since boot.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// The simulated debugfs mount.
    pub fn debugfs(&self) -> &Debugfs {
        &self.debugfs
    }

    /// Mutable access to debugfs (for registering provider files).
    pub fn debugfs_mut(&mut self) -> &mut Debugfs {
        &mut self.debugfs
    }

    /// Loads a module, resolving its handler entries against the symbol
    /// table.
    ///
    /// # Errors
    ///
    /// * [`KernelError::ModuleAlreadyLoaded`] if a module with this name
    ///   is present,
    /// * [`KernelError::UnknownFunction`] if a handler references a
    ///   non-existent core-kernel function.
    pub fn load_module(&mut self, module: KernelModule) -> Result<(), KernelError> {
        if self
            .modules
            .iter()
            .any(|m| m.module.name() == module.name())
        {
            return Err(KernelError::ModuleAlreadyLoaded(module.name().to_string()));
        }
        let mut resolved = HashMap::new();
        let mut internal = HashMap::new();
        for op in [
            ModuleOp::NicReceive,
            ModuleOp::NicTransmit,
            ModuleOp::NicInterrupt,
        ] {
            let handler = module.handler(op);
            let mut entries = Vec::with_capacity(handler.calls.len());
            for call in &handler.calls {
                entries.push((self.symbols.lookup(&call.entry)?, call.calls_per_unit));
            }
            resolved.insert(op, entries);
            internal.insert(op, handler.internal_cost_per_unit);
        }
        self.modules.push(LoadedModule {
            module,
            resolved,
            internal,
        });
        Ok(())
    }

    /// Unloads the named module.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::ModuleNotLoaded`] when absent.
    pub fn unload_module(&mut self, name: &str) -> Result<KernelModule, KernelError> {
        let pos = self
            .modules
            .iter()
            .position(|m| m.module.name() == name)
            .ok_or_else(|| KernelError::ModuleNotLoaded(name.to_string()))?;
        Ok(self.modules.remove(pos).module)
    }

    /// The named loaded module, if present.
    pub fn module(&self, name: &str) -> Option<&KernelModule> {
        self.modules
            .iter()
            .find(|m| m.module.name() == name)
            .map(|m| &m.module)
    }

    /// Names of loaded modules.
    pub fn loaded_modules(&self) -> Vec<&str> {
        self.modules.iter().map(|m| m.module.name()).collect()
    }

    /// Executes one kernel operation on `cpu`, walking every stage of its
    /// plan, then delivers any timer ticks that came due.
    ///
    /// # Errors
    ///
    /// * [`KernelError::CpuOutOfRange`] for an invalid CPU,
    /// * [`KernelError::UnknownFunction`] if the op plan references an
    ///   entry missing from this kernel build.
    pub fn run_op(&mut self, cpu: CpuId, op: KernelOp) -> Result<ExecStats, KernelError> {
        self.check_cpu(cpu)?;
        let mut stats = self.run_op_inner(cpu, op)?;
        stats += self.deliver_due_ticks(cpu)?;
        Ok(stats)
    }

    fn run_op_inner(&mut self, cpu: CpuId, op: KernelOp) -> Result<ExecStats, KernelError> {
        let mut stats = ExecStats::default();
        for stage in op.stages() {
            let entry = self.symbols.lookup(stage.entry)?;
            for _ in 0..stage.repeats {
                if stage.probability >= 1.0 || self.rng.random::<f32>() < stage.probability {
                    stats += self.execute_entry(cpu, entry);
                }
            }
        }
        self.cpus[cpu.0].ops_executed += 1;
        self.total_ops += 1;
        Ok(stats)
    }

    /// Executes one module operation covering `units` units of work
    /// (packets for NIC ops). Module-internal time elapses but produces
    /// no tracer events; each core-kernel call the driver makes walks its
    /// subtree normally.
    ///
    /// # Errors
    ///
    /// * [`KernelError::CpuOutOfRange`] for an invalid CPU,
    /// * [`KernelError::ModuleNotLoaded`] when the module is absent.
    pub fn run_module_op(
        &mut self,
        cpu: CpuId,
        module: &str,
        op: ModuleOp,
        units: u32,
    ) -> Result<ExecStats, KernelError> {
        self.check_cpu(cpu)?;
        let index = self
            .modules
            .iter()
            .position(|m| m.module.name() == module)
            .ok_or_else(|| KernelError::ModuleNotLoaded(module.to_string()))?;
        // Clone the (small) resolved call list to end the borrow of
        // self.modules before walking subtrees.
        let entries = self.modules[index].resolved[&op].clone();
        let internal = self.modules[index].internal[&op];
        let mut stats = ExecStats::default();
        for (entry, per_unit) in entries {
            let count = self.sample_count(per_unit, units);
            for _ in 0..count {
                stats += self.execute_entry(cpu, entry);
            }
        }
        // Driver-internal (un-instrumented) time.
        let internal_total = Nanos(internal.0 * units as u64);
        self.clock.advance(internal_total);
        stats.time += internal_total;
        self.cpus[cpu.0].ops_executed += 1;
        self.total_ops += 1;
        stats += self.deliver_due_ticks(cpu)?;
        Ok(stats)
    }

    /// Spends `duration` of un-instrumented user-mode time on `cpu`,
    /// delivering timer ticks that come due meanwhile.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::CpuOutOfRange`] for an invalid CPU.
    pub fn run_user_time(&mut self, cpu: CpuId, duration: Nanos) -> Result<ExecStats, KernelError> {
        self.check_cpu(cpu)?;
        self.clock.advance(duration);
        self.deliver_due_ticks(cpu)
    }

    /// Fires the tracer for a single function without walking its subtree
    /// (models one-shot `__init`-style invocations during boot).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::FunctionOutOfRange`] for a bad id.
    pub fn call_single(
        &mut self,
        cpu: CpuId,
        function: FunctionId,
    ) -> Result<ExecStats, KernelError> {
        self.check_cpu(cpu)?;
        let func = self.symbols.function(function)?;
        let cost = func.base_cost + self.tracer.overhead();
        self.tracer.on_function_call(cpu, function);
        self.cpus[cpu.0].calls_executed += 1;
        self.clock.advance(cost);
        Ok(ExecStats {
            calls: 1,
            time: cost,
        })
    }

    /// Walks the call subtree rooted at `entry`, firing the tracer for
    /// every call and charging base + instrumentation costs.
    fn execute_entry(&mut self, cpu: CpuId, entry: FunctionId) -> ExecStats {
        let graph = Arc::clone(&self.callgraph);
        let symbols = Arc::clone(&self.symbols);
        let overhead = self.tracer.overhead();
        let mut stack: Vec<FunctionId> = vec![entry];
        let mut calls = 0u64;
        let mut time = Nanos::ZERO;
        while let Some(f) = stack.pop() {
            calls += 1;
            self.tracer.on_function_call(cpu, f);
            let func = symbols.function(f).expect("graph ids are table-valid");
            time += func.base_cost + overhead;
            for edge in graph.callees(f) {
                let fires = edge.probability >= 1.0 || self.rng.random::<f32>() < edge.probability;
                if fires {
                    let reps = if edge.max_repeats <= 1 {
                        1
                    } else {
                        self.rng.random_range(1..=edge.max_repeats)
                    };
                    for _ in 0..reps {
                        stack.push(edge.callee);
                    }
                }
            }
        }
        self.cpus[cpu.0].calls_executed += calls;
        self.clock.advance(time);
        ExecStats { calls, time }
    }

    /// Samples the number of driver calls for `units` units of work at a
    /// mean rate of `per_unit` calls per unit.
    fn sample_count(&mut self, per_unit: f64, units: u32) -> u64 {
        if per_unit <= 0.0 || units == 0 {
            return 0;
        }
        let whole = per_unit.trunc() as u64 * units as u64;
        let frac = per_unit.fract();
        if frac == 0.0 {
            return whole;
        }
        // Binomial(units, frac) by direct simulation; units are small
        // (interrupt batches), so this stays cheap and exact.
        let mut extra = 0u64;
        for _ in 0..units {
            if self.rng.random::<f64>() < frac {
                extra += 1;
            }
        }
        whole + extra
    }

    /// Runs every timer tick that came due at the current simulated time.
    fn deliver_due_ticks(&mut self, cpu: CpuId) -> Result<ExecStats, KernelError> {
        let Some(period) = self.timer_period else {
            return Ok(ExecStats::default());
        };
        let mut stats = ExecStats::default();
        // Bound the loop: if the op advanced time by many periods, fire at
        // most 64 ticks and resynchronise (a real tickless kernel coalesces
        // missed ticks similarly).
        let mut fired = 0;
        while self.clock.now() >= self.next_tick && fired < 64 {
            self.next_tick += period;
            stats += self.run_op_inner(cpu, KernelOp::TimerTick)?;
            fired += 1;
        }
        if self.clock.now() >= self.next_tick {
            let now = self.clock.now().0;
            self.next_tick = Nanos(now - now % period.0) + period;
        }
        Ok(stats)
    }

    fn check_cpu(&self, cpu: CpuId) -> Result<(), KernelError> {
        if cpu.0 >= self.cpus.len() {
            return Err(KernelError::CpuOutOfRange {
                cpu: cpu.0,
                num_cpus: self.cpus.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CountingTracer;

    fn small_kernel() -> Kernel {
        Kernel::new(KernelConfig {
            num_cpus: 2,
            seed: 7,
            timer_hz: 0,
            image_seed: 0x2628,
        })
        .expect("image builds")
    }

    #[test]
    fn run_op_produces_calls_and_time() {
        let mut k = small_kernel();
        let stats = k.run_op(CpuId(0), KernelOp::Read { bytes: 4096 }).unwrap();
        assert!(stats.calls >= 4, "read should touch several functions");
        assert!(stats.time > Nanos::ZERO);
        assert_eq!(k.total_ops(), 1);
        assert_eq!(k.cpu(CpuId(0)).unwrap().ops_executed, 1);
        assert_eq!(k.cpu(CpuId(0)).unwrap().calls_executed, stats.calls);
    }

    #[test]
    fn tracer_sees_every_call() {
        let mut k = small_kernel();
        let tracer = Arc::new(CountingTracer::new(k.num_functions()));
        k.set_tracer(tracer.clone());
        let mut expected = 0;
        for op in [
            KernelOp::SyscallNull,
            KernelOp::Open { components: 3 },
            KernelOp::Fstat,
        ] {
            expected += k.run_op(CpuId(0), op).unwrap().calls;
        }
        assert_eq!(tracer.total(), expected);
    }

    #[test]
    fn seeded_kernels_are_identical() {
        let mut a = small_kernel();
        let mut b = small_kernel();
        for _ in 0..20 {
            let sa = a.run_op(CpuId(0), KernelOp::Write { bytes: 8192 }).unwrap();
            let sb = b.run_op(CpuId(0), KernelOp::Write { bytes: 8192 }).unwrap();
            assert_eq!(sa, sb);
        }
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn different_seeds_diverge() {
        let image_config = |seed| KernelConfig {
            num_cpus: 1,
            seed,
            timer_hz: 0,
            image_seed: 0x2628,
        };
        let mut a = Kernel::new(image_config(1)).unwrap();
        let mut b = Kernel::new(image_config(2)).unwrap();
        let mut diverged = false;
        for _ in 0..10 {
            let sa = a
                .run_op(CpuId(0), KernelOp::Open { components: 4 })
                .unwrap();
            let sb = b
                .run_op(CpuId(0), KernelOp::Open { components: 4 })
                .unwrap();
            if sa != sb {
                diverged = true;
            }
        }
        assert!(diverged, "stochastic branching should differ across seeds");
    }

    #[test]
    fn tracer_overhead_slows_the_clock() {
        struct Expensive;
        impl FunctionTracer for Expensive {
            fn on_function_call(&self, _: CpuId, _: FunctionId) {}
            fn overhead(&self) -> Nanos {
                Nanos(100)
            }
            fn name(&self) -> &str {
                "expensive"
            }
        }
        let mut vanilla = small_kernel();
        let mut traced = small_kernel();
        traced.set_tracer(Arc::new(Expensive));
        let sv = vanilla
            .run_op(CpuId(0), KernelOp::Fork { pages: 8 })
            .unwrap();
        let st = traced
            .run_op(CpuId(0), KernelOp::Fork { pages: 8 })
            .unwrap();
        // Same seed => same walk; only the per-call overhead differs.
        assert_eq!(sv.calls, st.calls);
        assert_eq!(st.time.0, sv.time.0 + 100 * st.calls);
    }

    #[test]
    fn invalid_cpu_is_rejected() {
        let mut k = small_kernel();
        assert!(matches!(
            k.run_op(CpuId(99), KernelOp::SyscallNull),
            Err(KernelError::CpuOutOfRange { .. })
        ));
    }

    #[test]
    fn timer_ticks_fire_on_schedule() {
        let mut k = Kernel::new(KernelConfig {
            num_cpus: 1,
            seed: 3,
            timer_hz: 1000, // 1ms period
            image_seed: 0x2628,
        })
        .unwrap();
        let tracer = Arc::new(CountingTracer::new(k.num_functions()));
        k.set_tracer(tracer.clone());
        let tick_entry = k.symbols().lookup("smp_apic_timer_interrupt").unwrap();
        // Spend 5ms of user time: ~5 ticks must fire.
        k.run_user_time(CpuId(0), Nanos::from_millis(5)).unwrap();
        let ticks = tracer.count(tick_entry);
        assert!((4..=6).contains(&ticks), "expected ~5 ticks, got {ticks}");
    }

    #[test]
    fn ticks_disabled_means_no_ticks() {
        let mut k = small_kernel();
        let tracer = Arc::new(CountingTracer::new(k.num_functions()));
        k.set_tracer(tracer.clone());
        k.run_user_time(CpuId(0), Nanos::from_secs(1)).unwrap();
        assert_eq!(tracer.total(), 0);
    }

    #[test]
    fn module_ops_only_touch_core_kernel() {
        let mut k = small_kernel();
        let tracer = Arc::new(CountingTracer::new(k.num_functions()));
        k.set_tracer(tracer.clone());
        k.load_module(crate::modules::myri10ge_v151_no_lro())
            .unwrap();
        let stats = k
            .run_module_op(CpuId(0), "myri10ge", ModuleOp::NicReceive, 32)
            .unwrap();
        // 32 packets, no LRO: at least one netif_receive_skb per packet.
        let netif = k.symbols().lookup("netif_receive_skb").unwrap();
        assert!(tracer.count(netif) >= 32);
        // Module internal time elapsed on top of core-kernel walk time.
        assert!(stats.time > Nanos::ZERO);
    }

    #[test]
    fn module_lifecycle() {
        let mut k = small_kernel();
        k.load_module(crate::modules::myri10ge_v151()).unwrap();
        assert!(k.module("myri10ge").is_some());
        assert_eq!(k.loaded_modules(), vec!["myri10ge"]);
        assert!(matches!(
            k.load_module(crate::modules::myri10ge_v143()),
            Err(KernelError::ModuleAlreadyLoaded(_))
        ));
        let unloaded = k.unload_module("myri10ge").unwrap();
        assert_eq!(unloaded.version(), "1.5.1");
        assert!(matches!(
            k.run_module_op(CpuId(0), "myri10ge", ModuleOp::NicReceive, 1),
            Err(KernelError::ModuleNotLoaded(_))
        ));
    }

    #[test]
    fn call_single_fires_exactly_once() {
        let mut k = small_kernel();
        let tracer = Arc::new(CountingTracer::new(k.num_functions()));
        k.set_tracer(tracer.clone());
        let f = k.symbols().lookup("memcpy").unwrap();
        let stats = k.call_single(CpuId(0), f).unwrap();
        assert_eq!(stats.calls, 1);
        assert_eq!(tracer.count(f), 1);
        assert_eq!(tracer.total(), 1);
    }
}
