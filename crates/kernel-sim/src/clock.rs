use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A span of simulated time, in nanoseconds.
///
/// All latencies in the simulator are expressed in `Nanos`; the newtype
/// keeps simulated time from being confused with counts or wall-clock
/// durations.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Zero duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// Builds a duration from seconds.
    pub const fn from_secs(s: u64) -> Nanos {
        Nanos(s * 1_000_000_000)
    }

    /// This duration in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This duration in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating addition (simulated clocks never wrap).
    pub fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    /// Saturating subtraction: clock differences never go negative.
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// The simulated monotonic clock of the machine.
///
/// The clock advances only when simulated work executes; there is no
/// independent wall-clock source. This makes runs perfectly reproducible.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SimClock {
    now: Nanos,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        SimClock { now: Nanos::ZERO }
    }

    /// Current simulated time since boot.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Advances the clock by `delta`.
    pub fn advance(&mut self, delta: Nanos) {
        self.now = self.now.saturating_add(delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Nanos::from_micros(3), Nanos(3_000));
        assert_eq!(Nanos::from_millis(2), Nanos(2_000_000));
        assert_eq!(Nanos::from_secs(1), Nanos(1_000_000_000));
        assert_eq!(Nanos(1_500).as_micros_f64(), 1.5);
        assert_eq!(Nanos::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos(100);
        let b = Nanos(40);
        assert_eq!(a + b, Nanos(140));
        assert_eq!(a - b, Nanos(60));
        assert_eq!(b - a, Nanos::ZERO); // saturates
        let mut c = a;
        c += b;
        assert_eq!(c, Nanos(140));
        assert_eq!(Nanos(u64::MAX).saturating_add(Nanos(1)), Nanos(u64::MAX));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Nanos(42).to_string(), "42ns");
        assert_eq!(Nanos(42_000).to_string(), "42.000us");
        assert_eq!(Nanos(1_500_000).to_string(), "1.500ms");
        assert_eq!(Nanos(2_000_000_000).to_string(), "2.000s");
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut clock = SimClock::new();
        assert_eq!(clock.now(), Nanos::ZERO);
        clock.advance(Nanos(5));
        clock.advance(Nanos(10));
        assert_eq!(clock.now(), Nanos(15));
    }
}
