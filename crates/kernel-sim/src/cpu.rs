use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a simulated logical CPU (hardware thread).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CpuId(pub usize);

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Per-CPU execution state and statistics.
///
/// Mirrors the pieces of a real per-CPU area that matter to Fmeter: the
/// preemption counter its counting stubs toggle (cheaper than atomics, as
/// the paper stresses), and bookkeeping the evaluation reads back.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CpuState {
    preempt_count: u32,
    /// Total instrumented kernel function calls executed on this CPU.
    pub calls_executed: u64,
    /// Total kernel operations (syscalls, faults, irqs) started here.
    pub ops_executed: u64,
    /// Times preemption was disabled (stub entries, lock sections).
    pub preempt_disables: u64,
}

impl CpuState {
    /// Fresh idle CPU.
    pub fn new() -> Self {
        CpuState::default()
    }

    /// Increments the preemption counter (`current_thread_info()->
    /// preempt_count++` in the paper's description of the Fmeter stub).
    pub fn preempt_disable(&mut self) {
        self.preempt_count += 1;
        self.preempt_disables += 1;
    }

    /// Decrements the preemption counter.
    ///
    /// # Panics
    ///
    /// Panics on underflow — unbalanced enable/disable is a simulator bug,
    /// exactly as it would be a kernel bug.
    pub fn preempt_enable(&mut self) {
        assert!(
            self.preempt_count > 0,
            "preempt_enable without matching disable"
        );
        self.preempt_count -= 1;
    }

    /// Current nesting depth of preempt-disable sections.
    pub fn preempt_count(&self) -> u32 {
        self.preempt_count
    }

    /// True when the CPU may be preempted (counter at zero).
    pub fn preemptible(&self) -> bool {
        self.preempt_count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preempt_nesting_balances() {
        let mut cpu = CpuState::new();
        assert!(cpu.preemptible());
        cpu.preempt_disable();
        cpu.preempt_disable();
        assert_eq!(cpu.preempt_count(), 2);
        assert!(!cpu.preemptible());
        cpu.preempt_enable();
        cpu.preempt_enable();
        assert!(cpu.preemptible());
        assert_eq!(cpu.preempt_disables, 2);
    }

    #[test]
    #[should_panic(expected = "without matching disable")]
    fn unbalanced_enable_panics() {
        let mut cpu = CpuState::new();
        cpu.preempt_enable();
    }

    #[test]
    fn display_formats_cpu() {
        assert_eq!(CpuId(3).to_string(), "cpu3");
    }
}
