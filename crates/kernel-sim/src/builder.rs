//! Deterministic construction of the simulated kernel image: symbol table,
//! generated intra-subsystem call edges, and the hand-wired cross-subsystem
//! edges that model the kernel's vertical paths.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::names::{anchors, vocabulary};
use crate::{CallEdge, CallGraph, FunctionId, KernelError, Nanos, Subsystem, SymbolTable};

/// Target function population per subsystem. The total is 3815, matching
/// the function count the paper reports for its instrumented 2.6.28 kernel
/// (Figure 1).
const POPULATION: &[(Subsystem, usize)] = &[
    (Subsystem::Syscall, 120),
    (Subsystem::Vfs, 500),
    (Subsystem::Ipc, 150),
    (Subsystem::Net, 700),
    (Subsystem::Fs, 400),
    (Subsystem::Block, 300),
    (Subsystem::Irq, 170),
    (Subsystem::Sched, 280),
    (Subsystem::Mm, 430),
    (Subsystem::Security, 120),
    (Subsystem::Time, 140),
    (Subsystem::Slab, 80),
    (Subsystem::Locking, 120),
    (Subsystem::Util, 305),
];

/// Total number of core-kernel functions the builder produces.
pub const NUM_KERNEL_FUNCTIONS: usize = 3815;

/// Number of layers per vertical subsystem (0 = entries).
const VERTICAL_LAYERS: u8 = 4;
/// Number of layers per service subsystem.
const SERVICE_LAYERS: u8 = 2;

/// Base-cost range (ns) per subsystem: (layer-0 .. deeper layers get the
/// lower end). These constants, together with per-call tracer overhead,
/// produce the latency shapes of Tables 1-3.
fn cost_range(subsystem: Subsystem) -> (u64, u64) {
    match subsystem {
        Subsystem::Syscall => (3, 9),
        Subsystem::Vfs => (4, 12),
        Subsystem::Ipc => (4, 12),
        Subsystem::Net => (5, 14),
        Subsystem::Fs => (6, 16),
        Subsystem::Block => (7, 18),
        Subsystem::Irq => (4, 12),
        Subsystem::Sched => (5, 14),
        Subsystem::Mm => (4, 12),
        Subsystem::Security => (2, 6),
        Subsystem::Time => (2, 8),
        Subsystem::Slab => (4, 10),
        Subsystem::Locking => (2, 6),
        Subsystem::Util => (2, 8),
    }
}

/// Hardware-dominated functions whose execution cost is not "a few
/// instructions": register/address-space switches, page zeroing and
/// copying, user-memory transfer, device doorbells, I/O waits. These
/// fixed costs are what make some lmbench rows far less sensitive to
/// per-call instrumentation than others (paper Table 1 spans 2.1x–12.2x
/// for Ftrace).
const COST_OVERRIDES: &[(&str, u64)] = &[
    ("__switch_to", 1200),
    ("switch_mm", 400),
    ("flush_tlb_page", 150),
    ("flush_tlb_mm", 300),
    ("flush_tlb_range", 250),
    ("do_anonymous_page", 500), // zeroes the fresh page
    ("do_wp_page", 700),        // copies the COW page
    ("setup_rt_frame", 350),    // signal frame to user stack
    ("force_sig_info", 200),
    ("__alloc_pages_internal", 120),
    ("submit_bio", 350), // device doorbell
    ("scsi_dispatch_cmd", 400),
    ("io_schedule", 1500), // I/O wait before completion
    ("copy_to_user", 120),
    ("copy_from_user", 120),
    ("memcpy", 60),
    ("skb_copy_datagram_iovec", 250),
    ("csum_partial", 150),
    ("csum_partial_copy_generic", 250),
    ("load_elf_binary", 800),
    ("journal_commit_transaction_step", 600),
    ("wait_task_zombie", 300),
    ("unix_stream_connect", 500),
];

/// Builds the kernel image (symbol table + call graph) deterministically
/// from a seed.
#[derive(Debug, Clone)]
pub struct KernelImageBuilder {
    seed: u64,
}

/// A fully built, verified kernel image.
#[derive(Debug, Clone)]
pub struct KernelImage {
    /// The instrumented symbol table (3815 functions).
    pub symbols: SymbolTable,
    /// Acyclic call graph over the symbols.
    pub callgraph: CallGraph,
}

impl Default for KernelImageBuilder {
    fn default() -> Self {
        KernelImageBuilder::new()
    }
}

impl KernelImageBuilder {
    /// Builder with the default seed (the "released kernel build").
    pub fn new() -> Self {
        // Grouped to read as kernel version 2.6.28, not a byte count.
        #[allow(clippy::unusual_byte_groupings)]
        KernelImageBuilder { seed: 0x2_6_28 }
    }

    /// Uses a custom seed — a different "kernel build" with the same
    /// anchors but different filler symbols, addresses, and edges. The
    /// paper notes signatures are not comparable across kernel versions;
    /// two images with different seeds model exactly that.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds and verifies the image.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::CyclicCallGraph`] if a hand-wired edge
    /// introduced a cycle (a bug in the edge tables) and
    /// [`KernelError::UnknownFunction`] if a hand-wired edge references a
    /// missing anchor.
    pub fn build(&self) -> Result<KernelImage, KernelError> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let (mut symbols, is_anchor) = self.build_symbols(&mut rng);
        self.apply_cost_overrides(&mut symbols);
        let mut callgraph = CallGraph::new(symbols.len());
        self.generate_edges(&symbols, &is_anchor, &mut callgraph, &mut rng);
        self.wire_cross_edges(&symbols, &mut callgraph)?;
        callgraph.verify_acyclic(&symbols)?;
        Ok(KernelImage { symbols, callgraph })
    }

    fn apply_cost_overrides(&self, symbols: &mut SymbolTable) {
        for &(name, cost) in COST_OVERRIDES {
            symbols
                .set_base_cost(name, Nanos(cost))
                .expect("cost overrides reference anchor symbols");
        }
    }

    /// Builds the table and reports which ids are hand-authored anchors.
    fn build_symbols(&self, rng: &mut SmallRng) -> (SymbolTable, Vec<bool>) {
        let mut table = SymbolTable::new();
        let mut is_anchor = Vec::new();
        let mut address: u64 = 0xffff_ffff_8100_0000;
        let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
        for &(subsystem, target) in POPULATION {
            let layers = if subsystem.is_service() {
                SERVICE_LAYERS
            } else {
                VERTICAL_LAYERS
            };
            let anchor_layers = anchors(subsystem);
            let (lo, hi) = cost_range(subsystem);
            let mut remaining = target;
            // Anchors first, at their designated layers.
            for (layer, names) in anchor_layers.iter().enumerate() {
                for name in *names {
                    assert!(
                        remaining > 0,
                        "{subsystem}: population smaller than anchors"
                    );
                    let cost = rng.random_range(lo..=hi);
                    used.insert((*name).to_string());
                    table.push(*name, address, subsystem, layer as u8, Nanos(cost));
                    is_anchor.push(true);
                    address += 16 * rng.random_range(4..=64) as u64;
                    remaining -= 1;
                }
            }
            // Filler names spread over the deeper half of the layer range.
            let (prefixes, stems, suffixes) = vocabulary(subsystem);
            let mut counter = 0usize;
            while remaining > 0 {
                let prefix = prefixes[rng.random_range(0..prefixes.len())];
                let stem = stems[rng.random_range(0..stems.len())];
                let suffix = suffixes[rng.random_range(0..suffixes.len())];
                let mut name = format!("{prefix}{stem}{suffix}");
                if used.contains(&name) {
                    counter += 1;
                    name = format!("{name}_{counter}");
                    if used.contains(&name) {
                        continue;
                    }
                }
                used.insert(name.clone());
                // Fillers populate layers 1.. (never entries) for vertical
                // subsystems, all layers for services.
                let layer = if subsystem.is_service() {
                    rng.random_range(0..layers)
                } else {
                    rng.random_range(1..layers)
                };
                // Deeper functions trend cheaper (leaf helpers).
                let depth_scale = 1.0 - 0.15 * layer as f64;
                let cost = ((rng.random_range(lo..=hi) as f64) * depth_scale).max(1.0) as u64;
                table.push(name, address, subsystem, layer, Nanos(cost));
                is_anchor.push(false);
                address += 16 * rng.random_range(4..=64) as u64;
                remaining -= 1;
            }
        }
        debug_assert_eq!(table.len(), NUM_KERNEL_FUNCTIONS);
        (table, is_anchor)
    }

    /// Generated edges: within-subsystem, strictly layer-increasing, plus
    /// calls into service subsystems (which rank after all verticals), with
    /// hot service anchors preferentially targeted.
    ///
    /// Acyclicity argument (holds for *every* seed): inside vertical
    /// subsystems, generated edges only target deeper-layer *filler*
    /// functions, so any anchor-to-anchor path consists purely of
    /// hand-wired edges — a fixed, statically acyclic set. Filler
    /// functions only call deeper filler and services; service subsystems
    /// rank after all verticals and are internally layer-increasing (with
    /// Slab restricted to later services). `verify_acyclic` remains the
    /// belt-and-braces check.
    fn generate_edges(
        &self,
        symbols: &SymbolTable,
        is_anchor: &[bool],
        graph: &mut CallGraph,
        rng: &mut SmallRng,
    ) {
        // Pre-index functions by (subsystem, layer); vertical subsystems
        // additionally index their filler-only population.
        let mut by_sl: std::collections::HashMap<(Subsystem, u8), Vec<FunctionId>> =
            std::collections::HashMap::new();
        let mut filler_by_sl: std::collections::HashMap<(Subsystem, u8), Vec<FunctionId>> =
            std::collections::HashMap::new();
        for f in symbols.iter() {
            by_sl.entry((f.subsystem, f.layer)).or_default().push(f.id);
            if !is_anchor[f.id.index()] {
                filler_by_sl
                    .entry((f.subsystem, f.layer))
                    .or_default()
                    .push(f.id);
            }
        }
        let service_pool: Vec<(Subsystem, f32)> = vec![
            (Subsystem::Locking, 0.50),
            (Subsystem::Util, 0.28),
            (Subsystem::Slab, 0.12),
            (Subsystem::Time, 0.07),
            (Subsystem::Security, 0.03),
        ];
        for f in symbols.iter() {
            let subsystem = f.subsystem;
            let layers = if subsystem.is_service() {
                SERVICE_LAYERS
            } else {
                VERTICAL_LAYERS
            };
            // --- Intra-subsystem edges to deeper layers ---
            if f.layer + 1 < layers {
                let fanout = match f.layer {
                    0 => rng.random_range(2..=4),
                    1 => rng.random_range(1..=3),
                    _ => rng.random_range(0..=2),
                };
                for _ in 0..fanout {
                    let target_layer = rng.random_range((f.layer + 1)..layers);
                    // Vertical subsystems: generated edges avoid anchors so
                    // hand-wired anchor paths (which include same-layer and
                    // backward hops) can never be closed into a cycle.
                    let pool = if subsystem.is_service() {
                        by_sl.get(&(subsystem, target_layer))
                    } else {
                        filler_by_sl.get(&(subsystem, target_layer))
                    };
                    if let Some(candidates) = pool {
                        if candidates.is_empty() {
                            continue;
                        }
                        let callee = candidates[rng.random_range(0..candidates.len())];
                        let probability = 0.25 + rng.random::<f32>() * 0.75;
                        let max_repeats = if rng.random::<f32>() < 0.15 { 3 } else { 1 };
                        graph.add_edge(
                            f.id,
                            CallEdge {
                                callee,
                                probability,
                                max_repeats,
                            },
                        );
                    }
                }
            }
            // --- Service edges (skip service->service beyond one hop down
            // the pool order to bound depth) ---
            if !subsystem.is_service() || subsystem == Subsystem::Slab {
                let service_fanout = match f.layer {
                    0 | 1 => rng.random_range(1..=3),
                    _ => rng.random_range(0..=2),
                };
                for _ in 0..service_fanout {
                    // Pick the service subsystem by weight.
                    let mut roll = rng.random::<f32>();
                    let mut target_subsystem = Subsystem::Util;
                    for &(s, w) in &service_pool {
                        if roll < w {
                            target_subsystem = s;
                            break;
                        }
                        roll -= w;
                    }
                    // Slab itself only calls strictly later services.
                    if subsystem == Subsystem::Slab
                        && target_subsystem.rank() <= Subsystem::Slab.rank()
                    {
                        target_subsystem = Subsystem::Locking;
                    }
                    let layer = rng.random_range(0..SERVICE_LAYERS);
                    let Some(candidates) = by_sl.get(&(target_subsystem, layer)) else {
                        continue;
                    };
                    // Hot heads: 70% of picks land on the first 24
                    // functions (the anchors: spinlocks, memcpy, kmalloc...)
                    // — this is what makes them corpus-wide stop words.
                    let hot = 24.min(candidates.len());
                    let idx = if rng.random::<f32>() < 0.7 {
                        rng.random_range(0..hot)
                    } else {
                        rng.random_range(0..candidates.len())
                    };
                    let callee = candidates[idx];
                    let probability = 0.3 + rng.random::<f32>() * 0.7;
                    let max_repeats = if rng.random::<f32>() < 0.25 { 2 } else { 1 };
                    graph.add_edge(
                        f.id,
                        CallEdge {
                            callee,
                            probability,
                            max_repeats,
                        },
                    );
                }
            }
            // --- Locking pairs: a function that takes a lock releases it ---
            if !subsystem.is_service() && rng.random::<f32>() < 0.5 {
                if let (Ok(lock), Ok(unlock)) =
                    (symbols.lookup("_spin_lock"), symbols.lookup("_spin_unlock"))
                {
                    graph.add_edge(f.id, CallEdge::always(lock));
                    graph.add_edge(f.id, CallEdge::always(unlock));
                }
            }
        }
    }

    /// Hand-wired cross-subsystem (and some intra-subsystem) edges modelling
    /// the kernel's well-known vertical paths. `(caller, callee, probability,
    /// max_repeats)`.
    fn cross_edges(&self) -> &'static [(&'static str, &'static str, f32, u8)] {
        &[
            // --- VFS read path into the page cache ---
            ("generic_file_aio_read", "do_sync_read", 0.6, 1),
            ("generic_file_aio_read", "find_get_page", 1.0, 3),
            ("generic_file_aio_read", "mark_page_accessed", 0.9, 2),
            ("generic_file_aio_read", "touch_atime", 0.8, 1),
            ("generic_file_aio_read", "copy_to_user", 1.0, 2),
            // Cache-miss path: readahead into the filesystem, then block.
            (
                "generic_file_aio_read",
                "page_cache_sync_readahead",
                0.08,
                1,
            ),
            ("page_cache_sync_readahead", "ondemand_readahead", 1.0, 1),
            ("ondemand_readahead", "ra_submit", 0.9, 1),
            ("ra_submit", "read_pages", 1.0, 1),
            ("read_pages", "add_to_page_cache_lru", 1.0, 3),
            // --- VFS write path ---
            (
                "generic_file_buffered_write",
                "grab_cache_page_write_begin",
                1.0,
                2,
            ),
            ("generic_file_buffered_write", "copy_from_user", 1.0, 2),
            ("generic_file_buffered_write", "mark_page_accessed", 0.7, 1),
            ("grab_cache_page_write_begin", "find_lock_page", 1.0, 1),
            ("ext3_write_begin", "journal_start", 1.0, 1),
            ("ext3_write_begin", "block_write_begin", 1.0, 1),
            ("ext3_write_begin", "ext3_get_block", 0.9, 2),
            ("ext3_ordered_write_end", "journal_stop", 1.0, 1),
            ("ext3_ordered_write_end", "journal_dirty_data", 0.9, 2),
            ("ext3_ordered_write_end", "mark_buffer_dirty", 0.9, 2),
            ("block_write_begin", "__block_prepare_write", 1.0, 1),
            ("__block_prepare_write", "create_empty_buffers", 0.4, 1),
            ("__block_prepare_write", "alloc_buffer_head", 0.4, 2),
            // --- Filesystem to block layer ---
            ("ext3_readpage", "mpage_readpage", 1.0, 1),
            ("mpage_readpage", "do_mpage_readpage", 1.0, 1),
            ("do_mpage_readpage", "ext3_get_block", 0.9, 2),
            ("do_mpage_readpage", "submit_bio", 0.9, 1),
            ("ext3_get_block", "ext3_get_blocks_handle", 1.0, 1),
            ("ext3_get_blocks_handle", "ext3_block_to_path", 1.0, 1),
            ("ext3_get_blocks_handle", "ext3_get_branch", 1.0, 1),
            ("submit_bh", "generic_make_request", 1.0, 1),
            ("ll_rw_block", "generic_make_request", 1.0, 2),
            ("sync_dirty_buffer", "ll_rw_block", 0.9, 1),
            ("submit_bio", "generic_make_request", 1.0, 1),
            ("generic_make_request", "__make_request", 1.0, 1),
            ("__make_request", "get_request", 0.8, 1),
            ("__make_request", "elv_merge", 0.9, 1),
            ("__make_request", "blk_plug_device", 0.5, 1),
            ("get_request", "blk_alloc_request", 0.9, 1),
            ("elv_next_request", "scsi_request_fn", 0.8, 1),
            ("scsi_request_fn", "scsi_dispatch_cmd", 0.9, 1),
            ("scsi_dispatch_cmd", "scsi_init_io", 0.9, 1),
            ("scsi_init_io", "blk_rq_map_sg", 1.0, 1),
            ("journal_start", "start_this_handle", 0.9, 1),
            ("journal_stop", "__journal_refile_buffer", 0.3, 1),
            ("journal_get_write_access", "do_get_write_access", 1.0, 1),
            (
                "journal_commit_transaction_step",
                "journal_write_metadata_buffer",
                0.9,
                2,
            ),
            ("journal_commit_transaction_step", "submit_bh", 0.9, 2),
            (
                "journal_commit_transaction_step",
                "__journal_file_buffer",
                0.8,
                2,
            ),
            ("ext3_mark_inode_dirty", "ext3_reserve_inode_write", 1.0, 1),
            (
                "ext3_reserve_inode_write",
                "journal_get_write_access",
                0.9,
                1,
            ),
            ("ext3_reserve_inode_write", "ext3_get_inode_loc", 0.9, 1),
            ("ext3_mark_inode_dirty", "ext3_mark_iloc_dirty", 1.0, 1),
            ("ext3_mark_iloc_dirty", "journal_dirty_metadata", 0.9, 1),
            ("ext3_create", "journal_start", 1.0, 1),
            ("ext3_create", "ext3_add_entry", 1.0, 1),
            ("ext3_create", "ext3_mark_inode_dirty", 1.0, 1),
            ("ext3_unlink", "ext3_find_entry", 1.0, 1),
            ("ext3_unlink", "ext3_delete_entry", 1.0, 1),
            ("ext3_add_entry", "ext3_find_entry", 0.6, 1),
            ("ext3_add_entry", "journal_get_write_access", 0.9, 1),
            ("ext3_delete_entry", "journal_get_write_access", 0.9, 1),
            // --- Block completion into IRQ and wakeups ---
            ("blk_complete_request_entry", "blk_done_softirq", 1.0, 1),
            ("scsi_softirq_done", "scsi_io_completion", 1.0, 1),
            ("scsi_io_completion", "scsi_end_request", 1.0, 1),
            ("scsi_end_request", "__end_that_request_first", 1.0, 1),
            ("scsi_end_request", "scsi_next_command", 0.8, 1),
            ("bio_endio", "end_buffer_read_sync", 0.5, 1),
            ("bio_endio", "__wake_up", 0.7, 1),
            ("end_buffer_read_sync", "unlock_page", 0.8, 1),
            ("unlock_page", "wake_up_page", 0.9, 1),
            // --- IRQ into the scheduler and network stack ---
            ("do_IRQ", "irq_enter", 1.0, 1),
            ("do_IRQ", "handle_irq", 1.0, 1),
            ("do_IRQ", "irq_exit", 1.0, 1),
            ("handle_irq", "handle_edge_irq", 0.7, 1),
            ("handle_edge_irq", "handle_IRQ_event", 0.95, 1),
            ("irq_exit", "do_softirq", 0.4, 1),
            ("do_softirq", "__do_softirq", 1.0, 1),
            ("smp_apic_timer_interrupt", "irq_enter", 1.0, 1),
            (
                "smp_apic_timer_interrupt",
                "local_apic_timer_interrupt",
                1.0,
                1,
            ),
            ("smp_apic_timer_interrupt", "irq_exit", 1.0, 1),
            ("local_apic_timer_interrupt", "hrtimer_interrupt", 1.0, 1),
            ("hrtimer_interrupt", "tick_sched_timer", 0.95, 1),
            ("hrtimer_interrupt", "hrtimer_forward", 0.8, 1),
            ("tick_sched_timer", "update_process_times", 1.0, 1),
            ("update_process_times", "account_system_time", 0.6, 1),
            ("update_process_times", "account_user_time", 0.4, 1),
            ("update_process_times", "run_local_timers", 1.0, 1),
            ("update_process_times", "scheduler_tick", 1.0, 1),
            ("update_process_times", "run_posix_cpu_timers", 0.7, 1),
            ("run_timer_softirq", "__run_timers", 1.0, 1),
            ("__run_timers", "call_timer_fn", 0.6, 2),
            ("net_rx_action", "netif_receive_skb", 0.9, 3),
            ("wakeup_softirqd", "wake_up_process", 1.0, 1),
            ("scheduler_tick", "task_tick_fair", 0.9, 1),
            ("scheduler_tick", "update_rq_clock", 1.0, 1),
            ("task_tick_fair", "entity_tick", 1.0, 2),
            ("entity_tick", "update_curr", 1.0, 1),
            // --- Network receive path ---
            ("netif_receive_skb", "ip_rcv", 0.95, 1),
            ("ip_rcv", "ip_rcv_finish", 1.0, 1),
            ("ip_rcv_finish", "ip_route_input", 1.0, 1),
            ("ip_rcv_finish", "ip_local_deliver", 0.95, 1),
            ("ip_local_deliver", "ip_local_deliver_finish", 1.0, 1),
            ("ip_local_deliver_finish", "tcp_v4_rcv", 0.9, 1),
            ("tcp_v4_rcv", "__inet_lookup_established", 1.0, 1),
            ("tcp_v4_rcv", "tcp_v4_do_rcv", 0.95, 1),
            ("tcp_v4_do_rcv", "tcp_rcv_established", 0.95, 1),
            ("tcp_rcv_established", "tcp_ack", 0.7, 1),
            ("tcp_rcv_established", "tcp_data_queue", 0.8, 1),
            ("tcp_rcv_established", "tcp_fast_path_check", 0.9, 1),
            ("tcp_ack", "tcp_clean_rtx_queue", 0.8, 1),
            ("tcp_data_queue", "sock_def_readable", 0.9, 1),
            ("sock_def_readable", "__wake_up_common", 0.9, 1),
            ("inet_lro_receive_skb", "eth_type_trans", 0.9, 1),
            ("inet_lro_receive_skb", "tcp_parse_options", 0.5, 1),
            ("lro_flush_all", "netif_receive_skb", 0.95, 2),
            // --- Network transmit path ---
            ("tcp_sendmsg", "sk_stream_alloc_skb", 0.8, 2),
            ("tcp_sendmsg", "copy_from_user", 1.0, 2),
            ("tcp_sendmsg", "tcp_push", 0.9, 1),
            ("tcp_push", "__tcp_push_pending_frames", 0.95, 1),
            ("__tcp_push_pending_frames", "tcp_write_xmit", 1.0, 1),
            ("tcp_write_xmit", "tcp_transmit_skb", 0.95, 2),
            ("tcp_transmit_skb", "tcp_established_options", 0.9, 1),
            ("tcp_transmit_skb", "tcp_v4_send_check", 1.0, 1),
            ("tcp_transmit_skb", "ip_queue_xmit", 1.0, 1),
            ("ip_queue_xmit", "ip_local_out", 1.0, 1),
            ("ip_local_out", "ip_output", 1.0, 1),
            ("ip_output", "ip_finish_output", 1.0, 1),
            ("ip_finish_output", "ip_finish_output2", 1.0, 1),
            ("ip_finish_output2", "neigh_resolve_output", 0.7, 1),
            ("ip_finish_output2", "dev_queue_xmit", 1.0, 1),
            ("dev_queue_xmit", "qdisc_run", 0.8, 1),
            ("qdisc_run", "__qdisc_run", 1.0, 1),
            ("__qdisc_run", "pfifo_fast_dequeue", 0.9, 2),
            ("__qdisc_run", "dev_hard_start_xmit", 0.95, 1),
            ("tcp_send_ack", "tcp_transmit_skb", 1.0, 1),
            ("tcp_v4_connect", "ip_route_output_flow", 1.0, 1),
            ("tcp_v4_connect", "inet_ehash_locate", 0.9, 1),
            ("tcp_v4_connect", "tcp_transmit_skb", 1.0, 1),
            ("unix_stream_sendmsg", "sock_alloc_send_skb_edge", 0.0001, 1), // placeholder pruned below
            // --- Unix sockets ---
            ("unix_stream_sendmsg", "alloc_skb", 0.9, 2),
            ("unix_stream_sendmsg", "skb_copy_datagram_iovec", 0.9, 1),
            ("unix_stream_sendmsg", "sock_def_readable", 0.95, 1),
            ("unix_stream_recvmsg", "skb_recv_datagram", 1.0, 1),
            ("unix_stream_recvmsg", "skb_copy_datagram_iovec", 1.0, 1),
            ("skb_recv_datagram", "skb_free_datagram", 0.5, 1),
            ("alloc_skb", "__alloc_skb", 1.0, 1),
            ("kfree_skb", "__kfree_skb", 0.9, 1),
            ("__kfree_skb", "skb_release_data", 1.0, 1),
            ("sock_sendmsg", "security_socket_sendmsg", 1.0, 1),
            ("sock_recvmsg", "security_socket_recvmsg", 1.0, 1),
            // --- Socket polling ---
            ("sock_poll", "tcp_poll", 0.9, 1),
            // --- VFS open/lookup path ---
            ("do_sys_open", "do_filp_open", 1.0, 1),
            ("do_sys_open", "alloc_fd", 1.0, 1),
            ("do_sys_open", "fd_install", 1.0, 1),
            ("do_filp_open", "path_lookup", 1.0, 1),
            ("do_filp_open", "nameidata_to_filp", 0.9, 1),
            ("do_filp_open", "may_open", 0.95, 1),
            ("path_lookup", "do_path_lookup", 1.0, 1),
            ("do_path_lookup", "path_walk", 1.0, 1),
            ("path_walk", "link_path_walk", 1.0, 1),
            ("link_path_walk", "do_lookup", 0.95, 3),
            ("link_path_walk", "permission", 0.9, 2),
            ("do_lookup", "__d_lookup", 1.0, 1),
            ("do_lookup", "follow_mount", 0.3, 1),
            ("__d_lookup", "dget", 0.7, 1),
            ("permission", "generic_permission", 0.7, 1),
            ("permission", "inode_permission", 0.8, 1),
            ("inode_permission", "security_inode_permission", 0.9, 1),
            ("vfs_read", "rw_verify_area", 1.0, 1),
            ("vfs_read", "fget_light", 1.0, 1),
            ("vfs_read", "security_file_permission", 1.0, 1),
            ("vfs_write", "rw_verify_area", 1.0, 1),
            ("vfs_write", "fget_light", 1.0, 1),
            ("vfs_write", "security_file_permission", 1.0, 1),
            ("vfs_write", "file_update_time", 0.7, 1),
            ("filp_close", "fput", 1.0, 1),
            ("fput", "__fput", 0.5, 1),
            ("__fput", "dput", 1.0, 1),
            ("dput", "d_kill", 0.05, 1),
            ("vfs_stat", "path_lookup", 1.0, 1),
            ("vfs_stat", "vfs_getattr", 1.0, 1),
            ("vfs_fstat", "fget_light", 1.0, 1),
            ("vfs_fstat", "vfs_getattr", 1.0, 1),
            ("vfs_getattr", "generic_fillattr", 0.9, 1),
            ("vfs_getattr", "ext3_getattr", 0.5, 1),
            ("vfs_create", "ext3_create", 0.9, 1),
            ("vfs_create", "security_inode_create", 1.0, 1),
            ("vfs_unlink", "ext3_unlink", 0.9, 1),
            ("vfs_unlink", "security_inode_unlink", 1.0, 1),
            ("vfs_mkdir", "ext3_mkdir", 0.9, 1),
            ("vfs_mkdir", "security_inode_mkdir", 1.0, 1),
            ("vfs_rename", "ext3_rename", 0.9, 1),
            ("vfs_readdir", "ext3_readdir", 0.9, 1),
            ("vfs_fsync", "ext3_sync_file", 0.9, 1),
            ("ext3_sync_file", "journal_commit_transaction_step", 0.8, 1),
            ("ext3_lookup", "ext3_find_entry", 1.0, 1),
            // --- select/poll ---
            ("core_sys_select", "do_select", 1.0, 1),
            ("do_select", "fget_light", 0.9, 3),
            ("do_select", "__pollwait", 0.6, 3),
            ("sys_select", "core_sys_select", 0.0001, 1), // pruned (plan wires it)
            // --- Pipes ---
            ("pipe_read", "pipe_wait", 0.4, 1),
            ("pipe_read", "copy_to_user", 0.9, 2),
            ("pipe_read", "__wake_up", 0.8, 1),
            ("pipe_write", "copy_from_user", 0.9, 2),
            ("pipe_write", "__wake_up", 0.9, 1),
            ("pipe_wait", "prepare_to_wait", 1.0, 1),
            ("pipe_wait", "schedule", 0.9, 1),
            ("pipe_wait", "finish_wait", 1.0, 1),
            // --- Locks ---
            ("posix_lock_file", "__posix_lock_file", 1.0, 1),
            ("__posix_lock_file", "locks_alloc_lock", 0.8, 1),
            ("__posix_lock_file", "locks_insert_lock", 0.7, 1),
            ("locks_remove_posix", "locks_delete_lock", 0.8, 1),
            ("fcntl_setlk", "security_file_lock", 0.9, 1),
            ("fcntl_setlk", "posix_lock_file", 0.95, 1),
            // --- Scheduler core ---
            ("schedule", "pick_next_task", 1.0, 1),
            ("schedule", "context_switch", 0.9, 1),
            ("schedule", "update_rq_clock", 1.0, 1),
            ("schedule", "put_prev_task_fair", 0.9, 1),
            ("pick_next_task", "pick_next_task_fair", 0.95, 1),
            ("pick_next_task_fair", "pick_next_entity", 1.0, 1),
            ("pick_next_task_fair", "set_next_entity", 1.0, 1),
            ("context_switch", "prepare_task_switch", 1.0, 1),
            ("context_switch", "switch_mm", 0.7, 1),
            ("context_switch", "__switch_to", 1.0, 1),
            ("context_switch", "finish_task_switch", 1.0, 1),
            ("try_to_wake_up", "task_rq_lock", 1.0, 1),
            ("try_to_wake_up", "activate_task", 0.9, 1),
            ("try_to_wake_up", "check_preempt_curr", 0.9, 1),
            ("try_to_wake_up", "task_rq_unlock", 1.0, 1),
            ("activate_task", "enqueue_task_fair", 1.0, 1),
            ("deactivate_task", "dequeue_task_fair", 1.0, 1),
            ("enqueue_task_fair", "enqueue_entity", 1.0, 2),
            ("dequeue_task_fair", "dequeue_entity", 1.0, 2),
            ("enqueue_entity", "update_curr", 0.95, 1),
            ("enqueue_entity", "__enqueue_entity", 0.95, 1),
            ("enqueue_entity", "place_entity", 0.6, 1),
            ("dequeue_entity", "update_curr", 0.95, 1),
            ("dequeue_entity", "__dequeue_entity", 0.95, 1),
            ("update_curr", "update_min_vruntime", 0.9, 1),
            ("update_curr", "calc_delta_fair", 0.8, 1),
            ("__wake_up", "__wake_up_common", 1.0, 1),
            ("__wake_up_common", "default_wake_function", 0.9, 2),
            ("__wake_up_common", "autoremove_wake_function", 0.4, 1),
            ("default_wake_function", "try_to_wake_up", 1.0, 1),
            ("autoremove_wake_function", "default_wake_function", 1.0, 1),
            ("wake_up_process", "try_to_wake_up", 1.0, 1),
            ("wake_up_new_task", "activate_task", 0.9, 1),
            ("wake_up_new_task", "check_preempt_curr", 0.9, 1),
            ("wait_for_completion", "schedule_timeout", 0.9, 1),
            ("schedule_timeout", "schedule", 0.95, 1),
            ("io_schedule", "schedule", 1.0, 1),
            ("prepare_to_wait", "add_wait_queue", 0.6, 1),
            ("finish_wait", "remove_wait_queue", 0.6, 1),
            // --- Fork/exec/exit verticals ---
            ("do_fork", "copy_process", 1.0, 1),
            ("do_fork", "wake_up_new_task", 0.95, 1),
            ("copy_process", "dup_task_struct", 1.0, 1),
            ("copy_process", "copy_files", 1.0, 1),
            ("copy_process", "copy_fs", 1.0, 1),
            ("copy_process", "copy_mm", 1.0, 1),
            ("copy_process", "copy_sighand", 1.0, 1),
            ("copy_process", "copy_signal", 1.0, 1),
            ("copy_process", "copy_thread", 1.0, 1),
            ("copy_process", "alloc_pid", 1.0, 1),
            ("copy_process", "sched_fork", 1.0, 1),
            ("copy_mm", "dup_mm", 0.9, 1),
            ("dup_mm", "mm_init_fn", 1.0, 1),
            ("dup_mm", "copy_page_range", 1.0, 3),
            ("copy_page_range", "copy_pte_range", 0.95, 3),
            ("copy_pte_range", "copy_one_pte", 0.95, 3),
            ("copy_pte_range", "pte_alloc_one", 0.5, 1),
            ("copy_one_pte", "set_pte_at_fn", 0.9, 1),
            ("do_execve", "search_binary_handler", 1.0, 1),
            ("search_binary_handler", "load_elf_binary", 0.9, 1),
            ("load_elf_binary", "flush_old_exec", 1.0, 1),
            ("load_elf_binary", "setup_arg_pages", 1.0, 1),
            ("load_elf_binary", "do_mmap_pgoff", 0.9, 3),
            ("flush_old_exec", "exit_mmap", 0.9, 1),
            ("do_exit", "exit_mmap", 0.9, 1),
            ("do_exit", "exit_files", 1.0, 1),
            ("do_exit", "exit_fs", 1.0, 1),
            ("do_exit", "exit_sem", 0.8, 1),
            ("do_exit", "exit_notify", 1.0, 1),
            ("do_exit", "schedule", 0.9, 1),
            ("exit_notify", "forget_original_parent", 0.9, 1),
            ("exit_notify", "__exit_signal", 0.9, 1),
            ("release_task", "free_pid", 0.9, 1),
            ("do_wait", "wait_consider_task", 1.0, 2),
            ("wait_consider_task", "wait_task_zombie", 0.6, 1),
            ("wait_task_zombie", "release_task", 0.9, 1),
            ("exit_mmap", "unmap_vmas", 1.0, 1),
            ("unmap_vmas", "zap_page_range", 0.9, 2),
            ("zap_page_range", "zap_pte_range", 0.95, 3),
            ("zap_pte_range", "page_remove_rmap", 0.7, 2),
            ("zap_pte_range", "free_hot_cold_page", 0.5, 2),
            // --- Memory management verticals ---
            ("do_page_fault", "find_vma", 1.0, 1),
            ("do_page_fault", "handle_mm_fault", 0.95, 1),
            ("handle_mm_fault", "__do_fault", 0.5, 1),
            ("handle_mm_fault", "do_anonymous_page", 0.35, 1),
            ("handle_mm_fault", "do_wp_page", 0.15, 1),
            ("handle_mm_fault", "pte_offset_map_lock_fn", 0.9, 1),
            ("__do_fault", "filemap_fault", 0.85, 1),
            ("filemap_fault", "find_get_page", 1.0, 1),
            ("filemap_fault", "page_cache_sync_readahead", 0.1, 1),
            ("do_anonymous_page", "__alloc_pages_internal", 0.9, 1),
            ("do_anonymous_page", "page_add_new_anon_rmap", 0.9, 1),
            ("do_anonymous_page", "lru_cache_add_active", 0.8, 1),
            ("do_wp_page", "__alloc_pages_internal", 0.7, 1),
            ("do_wp_page", "page_remove_rmap", 0.6, 1),
            ("__alloc_pages_internal", "get_page_from_freelist", 1.0, 1),
            ("get_page_from_freelist", "buffered_rmqueue", 0.9, 1),
            ("get_page_from_freelist", "zone_watermark_ok", 1.0, 1),
            ("buffered_rmqueue", "__rmqueue", 0.5, 1),
            ("buffered_rmqueue", "zone_statistics", 0.9, 1),
            ("find_get_page", "radix_tree_lookup", 1.0, 1),
            ("find_lock_page", "radix_tree_lookup", 1.0, 1),
            ("find_lock_page", "__lock_page", 0.2, 1),
            ("add_to_page_cache_lru", "add_to_page_cache_locked", 1.0, 1),
            ("add_to_page_cache_locked", "radix_tree_insert", 1.0, 1),
            ("do_mmap_pgoff", "mmap_region", 0.95, 1),
            ("do_mmap_pgoff", "get_unused_fd_region_probe", 0.0001, 1), // pruned
            ("mmap_region", "vma_link", 0.9, 1),
            ("mmap_region", "vma_merge", 0.6, 1),
            ("mmap_region", "security_file_mmap", 0.9, 1),
            ("do_munmap", "unmap_region", 0.95, 1),
            ("do_munmap", "split_vma", 0.3, 1),
            ("unmap_region", "unmap_vmas", 1.0, 1),
            ("do_brk", "find_vma_prepare", 1.0, 1),
            ("do_brk", "vma_merge", 0.7, 1),
            ("expand_stack", "acct_stack_growth", 0.9, 1),
            // --- Signals ---
            ("force_sig_info", "__send_signal", 0.9, 1),
            ("__send_signal", "signal_wake_up", 0.8, 1),
            ("__send_signal", "__sigqueue_alloc", 0.7, 1),
            ("signal_wake_up", "wake_up_process", 0.7, 1),
            ("get_signal_to_deliver", "dequeue_signal", 1.0, 1),
            ("dequeue_signal", "__dequeue_signal", 1.0, 1),
            ("__dequeue_signal", "collect_signal", 0.9, 1),
            ("dequeue_signal", "recalc_sigpending", 0.9, 1),
            ("handle_signal", "setup_rt_frame", 1.0, 1),
            ("do_sigaction", "recalc_sigpending", 0.5, 1),
            // --- Semaphores ---
            ("do_semtimedop", "sem_lock", 1.0, 1),
            ("do_semtimedop", "try_atomic_semop", 1.0, 1),
            ("do_semtimedop", "update_queue", 0.6, 1),
            ("do_semtimedop", "sem_unlock", 1.0, 1),
            ("do_semtimedop", "security_sem_semop", 0.9, 1),
            ("sem_lock", "ipc_lock", 1.0, 1),
            ("sem_unlock", "ipc_unlock", 1.0, 1),
            ("update_queue", "wake_up_process", 0.5, 1),
            ("try_atomic_semop", "ipcperms", 0.3, 1),
            // --- Slab pressure from network/VFS hot paths ---
            ("__alloc_skb", "kmem_cache_alloc", 1.0, 1),
            ("__alloc_skb", "__kmalloc", 0.9, 1),
            ("skb_release_data", "kfree", 0.9, 1),
            ("get_empty_filp", "kmem_cache_alloc", 1.0, 1),
            ("__fput", "kmem_cache_free", 0.7, 1),
            ("alloc_buffer_head", "kmem_cache_alloc", 1.0, 1),
            ("free_buffer_head", "kmem_cache_free", 1.0, 1),
            ("dup_task_struct", "kmem_cache_alloc", 1.0, 2),
            ("__sigqueue_alloc", "kmem_cache_alloc", 0.9, 1),
            ("__sigqueue_free", "kmem_cache_free", 0.9, 1),
            ("bio_alloc", "kmem_cache_alloc", 0.9, 1),
            ("locks_alloc_lock", "kmem_cache_alloc", 1.0, 1),
            ("pte_alloc_one", "__alloc_pages_internal", 0.9, 1),
            // --- gettimeofday ---
            ("do_gettimeofday", "getnstimeofday", 1.0, 1),
            ("getnstimeofday", "clocksource_read_tsc", 1.0, 1),
            ("ktime_get", "clocksource_read_tsc", 1.0, 1),
            ("sys_gettimeofday", "do_gettimeofday", 0.0001, 1), // pruned (plan wires it)
        ]
    }

    fn wire_cross_edges(
        &self,
        symbols: &SymbolTable,
        graph: &mut CallGraph,
    ) -> Result<(), KernelError> {
        for &(caller, callee, probability, max_repeats) in self.cross_edges() {
            // Edges with vanishing probability are documentation-only
            // placeholders for paths the op plans wire explicitly; skip
            // them (and tolerate their missing placeholder symbols).
            if probability < 0.001 {
                continue;
            }
            let caller_id = symbols.lookup(caller)?;
            let callee_id = symbols.lookup(callee)?;
            graph.add_edge(
                caller_id,
                CallEdge {
                    callee: callee_id,
                    probability,
                    max_repeats,
                },
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_builds_with_expected_population() {
        let image = KernelImageBuilder::new().build().unwrap();
        assert_eq!(image.symbols.len(), NUM_KERNEL_FUNCTIONS);
        assert!(image.callgraph.num_edges() > NUM_KERNEL_FUNCTIONS);
    }

    #[test]
    fn image_is_deterministic() {
        let a = KernelImageBuilder::new().build().unwrap();
        let b = KernelImageBuilder::new().build().unwrap();
        assert_eq!(a.symbols.len(), b.symbols.len());
        for (fa, fb) in a.symbols.iter().zip(b.symbols.iter()) {
            assert_eq!(fa, fb);
        }
        assert_eq!(a.callgraph.num_edges(), b.callgraph.num_edges());
    }

    #[test]
    fn different_seeds_differ() {
        let a = KernelImageBuilder::new().build().unwrap();
        let b = KernelImageBuilder::new().seed(99).build().unwrap();
        // Anchors exist in both, filler names will differ somewhere.
        let names_a: Vec<&str> = a.symbols.iter().map(|f| f.name.as_str()).collect();
        let names_b: Vec<&str> = b.symbols.iter().map(|f| f.name.as_str()).collect();
        assert_ne!(names_a, names_b);
    }

    #[test]
    fn graph_is_acyclic() {
        let image = KernelImageBuilder::new().build().unwrap();
        image.callgraph.verify_acyclic(&image.symbols).unwrap();
    }

    #[test]
    fn anchor_entries_resolve() {
        let image = KernelImageBuilder::new().build().unwrap();
        for name in [
            "sys_read",
            "vfs_read",
            "tcp_sendmsg",
            "do_page_fault",
            "schedule",
        ] {
            assert!(image.symbols.lookup(name).is_ok(), "{name} missing");
        }
    }

    #[test]
    fn addresses_are_strictly_increasing_and_kernel_like() {
        let image = KernelImageBuilder::new().build().unwrap();
        let mut prev = 0u64;
        for f in image.symbols.iter() {
            assert!(f.address > prev, "addresses must increase");
            assert!(f.address >= 0xffff_ffff_8100_0000);
            prev = f.address;
        }
    }

    #[test]
    fn subtree_sizes_are_reasonable() {
        // Expected dynamic calls per entry subtree must stay bounded —
        // the walk cost per op is the simulator's main scaling knob.
        let image = KernelImageBuilder::new().build().unwrap();
        for name in [
            "sys_read",
            "vfs_read",
            "tcp_sendmsg",
            "schedule",
            "do_page_fault",
        ] {
            let id = image.symbols.lookup(name).unwrap();
            let calls = image.callgraph.expected_calls(id);
            assert!(calls >= 2.0, "{name}: suspiciously small subtree {calls}");
            assert!(calls <= 2000.0, "{name}: explosive subtree {calls}");
        }
    }

    #[test]
    fn every_op_plan_resolves() {
        let image = KernelImageBuilder::new().build().unwrap();
        for op in crate::KernelOp::examples() {
            for stage in op.stages() {
                assert!(
                    image.symbols.lookup(stage.entry).is_ok(),
                    "{}: unresolved entry `{}`",
                    op.name(),
                    stage.entry
                );
            }
        }
    }
}
