//! The simulated boot sequence.
//!
//! Reproduces the workload behind the paper's Figure 1: "invocation counts
//! of 3815 functions of the Linux kernel version 2.6.28 ... from the late
//! boot-up stage until the login prompt was spawned". Boot consists of an
//! `__init` sweep (every function runs at least once) followed by a heavy
//! mix of early-userspace activity (init scripts forking, device probing,
//! filesystem mounting, daemon start-up), which is what bends the rank /
//! count curve into a power law.

use serde::{Deserialize, Serialize};

use crate::{CpuId, ExecStats, Kernel, KernelError, KernelOp, Nanos};

/// Summary of a boot run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BootReport {
    /// Functions in the symbol table (all touched at least once).
    pub functions: usize,
    /// Total instrumented calls performed during boot.
    pub total_calls: u64,
    /// Simulated boot duration.
    pub duration: Nanos,
}

impl Kernel {
    /// Runs the boot sequence on CPU 0 (secondary CPUs idle through early
    /// boot, as on real hardware).
    ///
    /// # Errors
    ///
    /// Propagates op execution failures (all ops resolve on a standard
    /// image, so errors indicate a custom image missing anchors).
    pub fn boot(&mut self) -> Result<BootReport, KernelError> {
        let cpu = CpuId(0);
        let start = self.now();
        let mut stats = ExecStats::default();

        // 1. __init sweep: every kernel function is executed once while
        //    subsystems initialise (driver registration, table setup...).
        for id in 0..self.num_functions() as u32 {
            stats += self.call_single(cpu, crate::FunctionId(id))?;
        }

        // 2. Early userspace: init + rc scripts. Heavy fork/exec activity,
        //    path walking, small file reads (config files), device nodes.
        let boot_mix: &[(KernelOp, u32)] = &[
            (KernelOp::Fork { pages: 24 }, 260),
            (KernelOp::Execve { pages: 48 }, 240),
            (KernelOp::Exit { pages: 24 }, 250),
            (KernelOp::Wait, 240),
            (KernelOp::Open { components: 4 }, 2600),
            (KernelOp::Read { bytes: 4096 }, 3400),
            (KernelOp::Write { bytes: 1024 }, 900),
            (KernelOp::Close, 2600),
            (KernelOp::Stat { components: 3 }, 3000),
            (KernelOp::Fstat, 1200),
            (KernelOp::Mmap { pages: 32 }, 700),
            (KernelOp::PageFault { major: false }, 5200),
            (KernelOp::PageFault { major: true }, 500),
            (KernelOp::Brk, 800),
            (KernelOp::FileCreate, 260),
            (KernelOp::Mkdir, 90),
            (KernelOp::Unlink, 120),
            (KernelOp::ReadDir { entries: 48 }, 420),
            (KernelOp::Fsync, 70),
            (KernelOp::PipeCreate, 160),
            (KernelOp::PipeWrite { bytes: 512 }, 420),
            (KernelOp::PipeRead { bytes: 512 }, 420),
            (KernelOp::ContextSwitch, 2600),
            (KernelOp::SignalInstall, 260),
            (KernelOp::SemOp, 120),
            (KernelOp::UnixConnect, 90),
            (KernelOp::UnixSend { bytes: 256 }, 340),
            (KernelOp::UnixRecv { bytes: 256 }, 340),
            (KernelOp::TcpConnect, 30),
            (KernelOp::Accept, 18),
            (KernelOp::Gettimeofday, 900),
            (KernelOp::Ioctl, 420),
            (KernelOp::SyscallNull, 1300),
            (KernelOp::BlockIrq, 700),
            (KernelOp::SoftirqNetRx { packets: 4 }, 60),
        ];
        // Interleave op kinds round-robin so the time-line resembles
        // concurrent rc scripts rather than phased batches.
        let mut remaining: Vec<(KernelOp, u32)> = boot_mix.to_vec();
        let mut progress = true;
        while progress {
            progress = false;
            for slot in remaining.iter_mut() {
                if slot.1 == 0 {
                    continue;
                }
                // Burst a small batch of this op kind.
                let burst = slot.1.min(7);
                for _ in 0..burst {
                    stats += self.run_op(cpu, slot.0)?;
                }
                slot.1 -= burst;
                progress = true;
            }
        }

        Ok(BootReport {
            functions: self.num_functions(),
            total_calls: stats.calls,
            duration: self.now() - start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountingTracer, KernelConfig};
    use std::sync::Arc;

    fn booted() -> (Kernel, Arc<CountingTracer>, BootReport) {
        let mut k = Kernel::new(KernelConfig {
            num_cpus: 2,
            seed: 5,
            timer_hz: 1000,
            image_seed: 0x2628,
        })
        .unwrap();
        let tracer = Arc::new(CountingTracer::new(k.num_functions()));
        k.set_tracer(tracer.clone());
        let report = k.boot().unwrap();
        (k, tracer, report)
    }

    #[test]
    fn boot_touches_every_function() {
        let (_, tracer, report) = booted();
        let counts = tracer.snapshot();
        assert!(
            counts.iter().all(|&c| c >= 1),
            "some function never ran during boot"
        );
        assert_eq!(report.functions, counts.len());
        assert!(report.total_calls > counts.len() as u64);
        assert!(report.duration > Nanos::ZERO);
    }

    #[test]
    fn boot_counts_span_orders_of_magnitude() {
        // The Figure-1 power-law shape needs a wide dynamic range.
        let (_, tracer, _) = booted();
        let counts = tracer.snapshot();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(min >= 1);
        assert!(
            max >= 10_000,
            "hottest function should be called >= 10^4 times, got {max}"
        );
    }

    #[test]
    fn boot_hot_head_is_service_functions() {
        // The most-called functions should be the hot service anchors
        // (locks, memcpy, allocation), like a real kernel's boot profile.
        let (k, tracer, _) = booted();
        let counts = tracer.snapshot();
        let mut ranked: Vec<(u64, usize)> = counts.iter().copied().zip(0..).collect();
        ranked.sort_unstable_by_key(|&(count, _)| std::cmp::Reverse(count));
        let top_service = ranked.iter().take(20).filter(|&&(_, i)| {
            k.symbols()
                .function(crate::FunctionId(i as u32))
                .map(|f| f.subsystem.is_service())
                .unwrap_or(false)
        });
        assert!(
            top_service.count() >= 10,
            "top-20 hottest boot functions should be dominated by service helpers"
        );
    }
}
