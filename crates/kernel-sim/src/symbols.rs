use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{KernelError, Nanos};

/// Identifier of a core-kernel function: a dense index into the
/// [`SymbolTable`].
///
/// Function ids double as term ids in the signature vector space — the
/// paper's orthonormal basis is exactly the set of distinct instrumented
/// kernel functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FunctionId(pub u32);

impl FunctionId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// Kernel subsystem a function belongs to.
///
/// Subsystems structure the generated call graph: most edges stay inside a
/// subsystem, a curated set of cross-subsystem edges models the real
/// vertical paths (VFS -> filesystem -> block, IRQ -> net, ...), and the
/// *service* subsystems (locking, slab, time, utilities) are callable from
/// everywhere — they become the corpus' high-frequency "stop words".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Subsystem {
    /// System call dispatch and entry stubs.
    Syscall,
    /// Virtual file system layer.
    Vfs,
    /// IPC: pipes, System-V semaphores, signals.
    Ipc,
    /// Network stack (sockets, TCP/IP, device layer).
    Net,
    /// Concrete filesystem (ext3-like) and journalling.
    Fs,
    /// Block layer, I/O scheduler, SCSI path.
    Block,
    /// Interrupts, softirqs, and the timer wheel.
    Irq,
    /// Scheduler: fork/exit, context switches, wakeups.
    Sched,
    /// Memory management: faults, page cache, page allocator.
    Mm,
    /// Security/LSM hook layer (capability checks).
    Security,
    /// Timekeeping primitives.
    Time,
    /// Slab allocator.
    Slab,
    /// Locking primitives (spinlocks, mutexes, RCU).
    Locking,
    /// Low-level utilities: string/memory ops, data structures, checksums.
    Util,
}

impl Subsystem {
    /// All subsystems, in the global call order used to keep the generated
    /// call graph acyclic: a function may only call *later* subsystems in
    /// this list (or deeper layers of its own).
    pub const ALL: [Subsystem; 14] = [
        Subsystem::Syscall,
        Subsystem::Vfs,
        Subsystem::Ipc,
        Subsystem::Net,
        Subsystem::Fs,
        Subsystem::Block,
        Subsystem::Irq,
        Subsystem::Sched,
        Subsystem::Mm,
        Subsystem::Security,
        Subsystem::Time,
        Subsystem::Slab,
        Subsystem::Locking,
        Subsystem::Util,
    ];

    /// Service subsystems are callable from any other subsystem.
    pub fn is_service(self) -> bool {
        matches!(
            self,
            Subsystem::Security
                | Subsystem::Time
                | Subsystem::Slab
                | Subsystem::Locking
                | Subsystem::Util
        )
    }

    /// Position in the global acyclicity order.
    pub fn rank(self) -> usize {
        Subsystem::ALL
            .iter()
            .position(|&s| s == self)
            .expect("every subsystem is in ALL")
    }

    /// Short lowercase name (matches `/proc/kallsyms`-style grouping used
    /// in reports).
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Syscall => "syscall",
            Subsystem::Vfs => "vfs",
            Subsystem::Ipc => "ipc",
            Subsystem::Net => "net",
            Subsystem::Fs => "fs",
            Subsystem::Block => "block",
            Subsystem::Irq => "irq",
            Subsystem::Sched => "sched",
            Subsystem::Mm => "mm",
            Subsystem::Security => "security",
            Subsystem::Time => "time",
            Subsystem::Slab => "slab",
            Subsystem::Locking => "locking",
            Subsystem::Util => "util",
        }
    }
}

impl fmt::Display for Subsystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Metadata for one core-kernel function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelFunction {
    /// Dense id; equals the function's index in the table.
    pub id: FunctionId,
    /// Symbol name, unique within the table.
    pub name: String,
    /// Load address. Like the paper says, symbols load at the same address
    /// across reboots of the same build, so addresses identify functions
    /// unambiguously (names may be duplicated by `static` functions in a
    /// real kernel).
    pub address: u64,
    /// Owning subsystem.
    pub subsystem: Subsystem,
    /// Call-graph layer within the subsystem (0 = entry point).
    pub layer: u8,
    /// Simulated execution cost of the function body itself, excluding
    /// callees and tracer overhead.
    pub base_cost: Nanos,
}

/// The kernel's symbol table: every instrumented (mcount-visible) function.
///
/// Functions living in loadable modules are deliberately *not* present —
/// Fmeter does not instrument module text (paper §3), so modules are only
/// observable through the core-kernel functions they call.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SymbolTable {
    functions: Vec<KernelFunction>,
    by_name: HashMap<String, FunctionId>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Adds a function, assigning it the next id.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names: the builder generates unique names, so a
    /// duplicate is a bug, not an input condition.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        address: u64,
        subsystem: Subsystem,
        layer: u8,
        base_cost: Nanos,
    ) -> FunctionId {
        let name = name.into();
        let id = FunctionId(self.functions.len() as u32);
        let previous = self.by_name.insert(name.clone(), id);
        assert!(previous.is_none(), "duplicate kernel symbol `{name}`");
        self.functions.push(KernelFunction {
            id,
            name,
            address,
            subsystem,
            layer,
            base_cost,
        });
        id
    }

    /// Number of functions — the dimensionality `N` of the signature
    /// vector space.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Returns `true` when the table has no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Looks a function up by id.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::FunctionOutOfRange`] for an id past the end
    /// of the table.
    pub fn function(&self, id: FunctionId) -> Result<&KernelFunction, KernelError> {
        self.functions
            .get(id.index())
            .ok_or(KernelError::FunctionOutOfRange {
                id: id.0,
                len: self.functions.len(),
            })
    }

    /// Looks a function up by exact symbol name.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownFunction`] when absent.
    pub fn lookup(&self, name: &str) -> Result<FunctionId, KernelError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| KernelError::UnknownFunction(name.to_string()))
    }

    /// Iterates over all functions in id order.
    pub fn iter(&self) -> impl Iterator<Item = &KernelFunction> {
        self.functions.iter()
    }

    /// Overrides a function's base execution cost (builder calibration).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownFunction`] when the name is absent.
    pub fn set_base_cost(&mut self, name: &str, cost: Nanos) -> Result<(), KernelError> {
        let id = self.lookup(name)?;
        self.functions[id.index()].base_cost = cost;
        Ok(())
    }

    /// Ids of all functions in `subsystem` at `layer`.
    pub fn by_subsystem_layer(&self, subsystem: Subsystem, layer: u8) -> Vec<FunctionId> {
        self.functions
            .iter()
            .filter(|f| f.subsystem == subsystem && f.layer == layer)
            .map(|f| f.id)
            .collect()
    }

    /// Ids of all functions in `subsystem`.
    pub fn by_subsystem(&self, subsystem: Subsystem) -> Vec<FunctionId> {
        self.functions
            .iter()
            .filter(|f| f.subsystem == subsystem)
            .map(|f| f.id)
            .collect()
    }

    /// The highest layer present in `subsystem` (0 when absent).
    pub fn max_layer(&self, subsystem: Subsystem) -> u8 {
        self.functions
            .iter()
            .filter(|f| f.subsystem == subsystem)
            .map(|f| f.layer)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SymbolTable {
        let mut t = SymbolTable::new();
        t.push(
            "sys_read",
            0xffffffff81000000,
            Subsystem::Syscall,
            0,
            Nanos(10),
        );
        t.push("vfs_read", 0xffffffff81000100, Subsystem::Vfs, 0, Nanos(15));
        t.push(
            "fget_light",
            0xffffffff81000200,
            Subsystem::Vfs,
            1,
            Nanos(5),
        );
        t
    }

    #[test]
    fn push_assigns_dense_ids() {
        let t = table();
        assert_eq!(t.len(), 3);
        assert_eq!(t.lookup("sys_read").unwrap(), FunctionId(0));
        assert_eq!(t.lookup("fget_light").unwrap(), FunctionId(2));
        assert_eq!(t.function(FunctionId(1)).unwrap().name, "vfs_read");
    }

    #[test]
    fn lookup_unknown_errors() {
        let t = table();
        assert_eq!(
            t.lookup("nope").unwrap_err(),
            KernelError::UnknownFunction("nope".into())
        );
        assert!(matches!(
            t.function(FunctionId(99)),
            Err(KernelError::FunctionOutOfRange { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate kernel symbol")]
    fn duplicate_name_panics() {
        let mut t = table();
        t.push("sys_read", 0xdead, Subsystem::Syscall, 0, Nanos(1));
    }

    #[test]
    fn subsystem_layer_queries() {
        let t = table();
        assert_eq!(t.by_subsystem(Subsystem::Vfs).len(), 2);
        assert_eq!(t.by_subsystem_layer(Subsystem::Vfs, 1), vec![FunctionId(2)]);
        assert_eq!(t.max_layer(Subsystem::Vfs), 1);
        assert_eq!(t.max_layer(Subsystem::Net), 0);
    }

    #[test]
    fn subsystem_order_is_consistent() {
        // Service subsystems sort after all vertical ones.
        for s in Subsystem::ALL {
            if s.is_service() {
                assert!(s.rank() >= 9, "{s} should rank after vertical subsystems");
            }
        }
        // rank is the position in ALL.
        for (i, s) in Subsystem::ALL.iter().enumerate() {
            assert_eq!(s.rank(), i);
        }
    }

    #[test]
    fn display_impls() {
        assert_eq!(FunctionId(7).to_string(), "fn#7");
        assert_eq!(Subsystem::Vfs.to_string(), "vfs");
    }
}
