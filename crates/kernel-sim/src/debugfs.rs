use std::collections::BTreeMap;
use std::sync::Arc;

use crate::KernelError;

/// A readable file exposed through the simulated `debugfs`.
///
/// The paper's Fmeter exports per-function invocation counts to user space
/// through the kernel's debugfs pseudo filesystem; tracers in
/// `fmeter-trace` implement this trait to do the same against the
/// simulator.
pub trait DebugfsFile: Send + Sync {
    /// Produces the file's current contents.
    fn read(&self) -> String;
}

impl<F> DebugfsFile for F
where
    F: Fn() -> String + Send + Sync,
{
    fn read(&self) -> String {
        self()
    }
}

/// The simulated `debugfs` mount: a flat registry of named provider files.
///
/// # Examples
///
/// ```
/// use fmeter_kernel_sim::Debugfs;
/// use std::sync::Arc;
///
/// let mut dfs = Debugfs::new();
/// dfs.register("fmeter/version", Arc::new(|| "1".to_string()));
/// assert_eq!(dfs.read("fmeter/version")?, "1");
/// # Ok::<(), fmeter_kernel_sim::KernelError>(())
/// ```
#[derive(Default)]
pub struct Debugfs {
    files: BTreeMap<String, Arc<dyn DebugfsFile>>,
}

impl std::fmt::Debug for Debugfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Debugfs")
            .field("files", &self.ls())
            .finish()
    }
}

impl Debugfs {
    /// An empty mount.
    pub fn new() -> Self {
        Debugfs::default()
    }

    /// Registers (or replaces) a file at `path`.
    pub fn register(&mut self, path: impl Into<String>, file: Arc<dyn DebugfsFile>) {
        self.files.insert(path.into(), file);
    }

    /// Removes the file at `path`, returning whether it existed.
    pub fn unregister(&mut self, path: &str) -> bool {
        self.files.remove(path).is_some()
    }

    /// Reads the file at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchDebugfsFile`] when absent.
    pub fn read(&self, path: &str) -> Result<String, KernelError> {
        self.files
            .get(path)
            .map(|f| f.read())
            .ok_or_else(|| KernelError::NoSuchDebugfsFile(path.to_string()))
    }

    /// Lists registered paths in sorted order.
    pub fn ls(&self) -> Vec<&str> {
        self.files.keys().map(String::as_str).collect()
    }

    /// Number of registered files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Returns `true` when no files are registered.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn register_read_unregister() {
        let mut dfs = Debugfs::new();
        assert!(dfs.is_empty());
        dfs.register("tracing/fmeter/counts", Arc::new(|| "0 1 2".to_string()));
        assert_eq!(dfs.read("tracing/fmeter/counts").unwrap(), "0 1 2");
        assert_eq!(dfs.ls(), vec!["tracing/fmeter/counts"]);
        assert!(dfs.unregister("tracing/fmeter/counts"));
        assert!(!dfs.unregister("tracing/fmeter/counts"));
        assert!(matches!(
            dfs.read("tracing/fmeter/counts"),
            Err(KernelError::NoSuchDebugfsFile(_))
        ));
    }

    #[test]
    fn files_read_live_state() {
        let counter = Arc::new(AtomicU64::new(0));
        let mut dfs = Debugfs::new();
        let provider = Arc::clone(&counter);
        dfs.register(
            "count",
            Arc::new(move || provider.load(Ordering::Relaxed).to_string()),
        );
        assert_eq!(dfs.read("count").unwrap(), "0");
        counter.store(42, Ordering::Relaxed);
        assert_eq!(dfs.read("count").unwrap(), "42");
    }

    #[test]
    fn ls_is_sorted() {
        let mut dfs = Debugfs::new();
        dfs.register("b", Arc::new(String::new));
        dfs.register("a", Arc::new(String::new));
        assert_eq!(dfs.ls(), vec!["a", "b"]);
        assert_eq!(dfs.len(), 2);
    }
}
