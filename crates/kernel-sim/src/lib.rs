//! A deterministic monolithic-kernel simulator — the substrate under the
//! Fmeter reproduction.
//!
//! The Fmeter paper (Marian et al., MIDDLEWARE 2012) instruments every
//! function of a Linux 2.6.28 kernel via the `mcount` mechanism and counts
//! invocations. This crate provides the piece that cannot run inside a
//! build container: the kernel itself. It models
//!
//! * a [`SymbolTable`] of 3815 core-kernel functions
//!   ([`NUM_KERNEL_FUNCTIONS`], matching the paper's Figure 1) across 14
//!   subsystems, with stable load addresses,
//! * an acyclic stochastic [`CallGraph`] (generated intra-subsystem edges
//!   plus hand-wired vertical paths: VFS → ext3 → block, socket → TCP → IP
//!   → device, IRQ → scheduler, ...),
//! * [`KernelOp`] plans for ~45 syscall-level operations, whose execution
//!   walks call subtrees and fires a pluggable [`FunctionTracer`] on every
//!   call — the simulator's `mcount` hook,
//! * per-CPU state, a simulated nanosecond clock, timer interrupts,
//! * runtime-loadable [`KernelModule`]s that are *not* instrumented and
//!   appear only through the core-kernel functions they call (including the
//!   three myri10ge driver variants of the paper's Table 5), and
//! * a [`boot`](Kernel::boot) sequence reproducing the Figure-1 power law.
//!
//! Everything is deterministic given the image seed and the op
//! sequence: same calls, same clock, same counters on every run — the
//! property the whole evaluation layer (and its committed baselines)
//! rests on. The crate deliberately knows nothing about signatures or
//! tracing policy; it only fires the [`FunctionTracer`] hook and lets
//! `fmeter-trace` decide what a call means. `docs/ARCHITECTURE.md` in
//! the repository shows where this substrate sits in the data flow
//! (kernel-sim → trace → core → ir → ml → bench).
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use fmeter_kernel_sim::{CountingTracer, CpuId, Kernel, KernelConfig, KernelOp};
//!
//! let mut kernel = Kernel::new(KernelConfig::default())?;
//! let tracer = Arc::new(CountingTracer::new(kernel.num_functions()));
//! kernel.set_tracer(tracer.clone());
//!
//! kernel.run_op(CpuId(0), KernelOp::Open { components: 3 })?;
//! kernel.run_op(CpuId(0), KernelOp::Read { bytes: 8192 })?;
//!
//! let open_path = kernel.symbols().lookup("do_filp_open")?;
//! assert!(tracer.count(open_path) >= 1);
//! # Ok::<(), fmeter_kernel_sim::KernelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boot;
mod builder;
mod callgraph;
mod clock;
mod cpu;
mod debugfs;
mod engine;
mod error;
mod module;
mod names;
mod ops;
mod symbols;
mod tracer;

pub use boot::BootReport;
pub use builder::{KernelImage, KernelImageBuilder, NUM_KERNEL_FUNCTIONS};
pub use callgraph::{CallEdge, CallGraph};
pub use clock::{Nanos, SimClock};
pub use cpu::{CpuId, CpuState};
pub use debugfs::{Debugfs, DebugfsFile};
pub use engine::{ExecStats, Kernel, KernelConfig};
pub use error::KernelError;
pub use module::{modules, KernelModule, ModuleCall, ModuleHandler, ModuleOp};
pub use ops::{KernelOp, Stage};
pub use symbols::{FunctionId, KernelFunction, Subsystem, SymbolTable};
pub use tracer::{CountingTracer, FunctionTracer, NullTracer, RecordingTracer};
