use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::{CpuId, FunctionId, Nanos};

/// The `mcount` hook: implementors observe every core-kernel function call.
///
/// This is the seam the paper's two instrumentation systems share — both
/// Ftrace's function tracer and Fmeter are "called" from the compiler-
/// injected `mcount` preamble of every kernel function. The simulator fires
/// [`on_function_call`](FunctionTracer::on_function_call) once per simulated
/// call and charges [`overhead`](FunctionTracer::overhead) of simulated time
/// for it.
///
/// Module-local functions never reach the tracer: Fmeter does not
/// instrument runtime-loadable modules (paper §3), and the simulator
/// enforces that by construction.
pub trait FunctionTracer: Send + Sync {
    /// Called on entry of every instrumented kernel function.
    fn on_function_call(&self, cpu: CpuId, function: FunctionId);

    /// Simulated cost added to every instrumented call (the per-call price
    /// of the instrumentation). [`NullTracer`] charges zero: "virtually
    /// zero runtime overhead if not enabled".
    fn overhead(&self) -> Nanos;

    /// Short human-readable name ("vanilla", "fmeter", "ftrace", ...).
    fn name(&self) -> &str;
}

/// The "vanilla kernel" tracer: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl FunctionTracer for NullTracer {
    fn on_function_call(&self, _cpu: CpuId, _function: FunctionId) {}

    fn overhead(&self) -> Nanos {
        Nanos::ZERO
    }

    fn name(&self) -> &str {
        "vanilla"
    }
}

/// A reference tracer for tests: a single global array of atomic counters,
/// no per-CPU distribution, no simulated overhead.
///
/// It is deliberately the *simplest possible correct implementation* of
/// call counting; `fmeter-trace`'s production implementation is validated
/// against it in the integration tests.
#[derive(Debug)]
pub struct CountingTracer {
    counts: Vec<AtomicU64>,
}

impl CountingTracer {
    /// Creates a tracer for a symbol table of `num_functions` functions.
    pub fn new(num_functions: usize) -> Self {
        CountingTracer {
            counts: (0..num_functions).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of times `function` has been observed.
    pub fn count(&self, function: FunctionId) -> u64 {
        self.counts[function.index()].load(Ordering::Relaxed)
    }

    /// Total observed calls across all functions.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Snapshot of all counters.
    pub fn snapshot(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
    }
}

impl FunctionTracer for CountingTracer {
    fn on_function_call(&self, _cpu: CpuId, function: FunctionId) {
        self.counts[function.index()].fetch_add(1, Ordering::Relaxed);
    }

    fn overhead(&self) -> Nanos {
        Nanos::ZERO
    }

    fn name(&self) -> &str {
        "counting-reference"
    }
}

/// A tracer that records the full call sequence (for tests that need exact
/// ordering). Unbounded memory — test-sized workloads only.
#[derive(Debug, Default)]
pub struct RecordingTracer {
    calls: Mutex<Vec<(CpuId, FunctionId)>>,
}

impl RecordingTracer {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded call sequence so far.
    pub fn calls(&self) -> Vec<(CpuId, FunctionId)> {
        self.calls
            .lock()
            .expect("recording tracer lock poisoned")
            .clone()
    }

    /// Number of recorded calls.
    pub fn len(&self) -> usize {
        self.calls
            .lock()
            .expect("recording tracer lock poisoned")
            .len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl FunctionTracer for RecordingTracer {
    fn on_function_call(&self, cpu: CpuId, function: FunctionId) {
        self.calls
            .lock()
            .expect("recording tracer lock poisoned")
            .push((cpu, function));
    }

    fn overhead(&self) -> Nanos {
        Nanos::ZERO
    }

    fn name(&self) -> &str {
        "recording"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tracer_is_free() {
        let t = NullTracer;
        assert_eq!(t.overhead(), Nanos::ZERO);
        assert_eq!(t.name(), "vanilla");
        t.on_function_call(CpuId(0), FunctionId(3)); // no-op, no panic
    }

    #[test]
    fn counting_tracer_counts() {
        let t = CountingTracer::new(4);
        t.on_function_call(CpuId(0), FunctionId(1));
        t.on_function_call(CpuId(1), FunctionId(1));
        t.on_function_call(CpuId(0), FunctionId(3));
        assert_eq!(t.count(FunctionId(1)), 2);
        assert_eq!(t.count(FunctionId(3)), 1);
        assert_eq!(t.count(FunctionId(0)), 0);
        assert_eq!(t.total(), 3);
        assert_eq!(t.snapshot(), vec![0, 2, 0, 1]);
        t.reset();
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn recording_tracer_preserves_order() {
        let t = RecordingTracer::new();
        assert!(t.is_empty());
        t.on_function_call(CpuId(0), FunctionId(5));
        t.on_function_call(CpuId(2), FunctionId(1));
        assert_eq!(
            t.calls(),
            vec![(CpuId(0), FunctionId(5)), (CpuId(2), FunctionId(1))]
        );
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn tracers_are_object_safe() {
        let tracers: Vec<Box<dyn FunctionTracer>> =
            vec![Box::new(NullTracer), Box::new(CountingTracer::new(1))];
        for t in &tracers {
            t.on_function_call(CpuId(0), FunctionId(0));
        }
    }
}
