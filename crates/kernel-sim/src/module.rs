//! Runtime-loadable kernel modules.
//!
//! Fmeter does **not** instrument functions living in modules (paper §3):
//! module text is relocated at load time, and even tiny driver changes
//! shift every subsequent offset. Modules therefore appear in signatures
//! *only* through the core-kernel functions they call — which is exactly
//! what the paper's myri10ge experiment (Table 5) exploits, and what this
//! module models: a [`KernelModule`] is a bag of *handlers* mapping module
//! operations to distributions of core-kernel entry calls.

use serde::{Deserialize, Serialize};

use crate::Nanos;

/// An operation served by a loaded module (driver-level event).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ModuleOp {
    /// The NIC received a batch of packets; the driver pushes them into
    /// the core network stack.
    NicReceive,
    /// The core stack handed the driver packets to put on the wire.
    NicTransmit,
    /// The device raised an interrupt (housekeeping path).
    NicInterrupt,
}

/// One core-kernel call a module handler makes: `entry` is invoked
/// `calls_per_unit` times per unit of work (fractional values are sampled
/// stochastically at execution time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleCall {
    /// Anchor name of the core-kernel function the driver calls into.
    pub entry: String,
    /// Mean invocations per unit of work (per packet for NIC ops).
    pub calls_per_unit: f64,
}

impl ModuleCall {
    /// Convenience constructor.
    pub fn new(entry: impl Into<String>, calls_per_unit: f64) -> Self {
        ModuleCall {
            entry: entry.into(),
            calls_per_unit,
        }
    }
}

/// A handler for one [`ModuleOp`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ModuleHandler {
    /// Core-kernel calls made per unit of work.
    pub calls: Vec<ModuleCall>,
    /// Driver-internal (un-instrumented) execution cost per unit of work.
    /// This time is visible in latencies but invisible to the tracer —
    /// like real module code compiled without `-pg`.
    pub internal_cost_per_unit: Nanos,
}

/// A loadable module: name, version, and its per-op behaviour.
///
/// # Examples
///
/// ```
/// use fmeter_kernel_sim::modules;
///
/// let lro = modules::myri10ge_v151();
/// let nolro = modules::myri10ge_v151_no_lro();
/// assert_eq!(lro.version(), "1.5.1");
/// // Same driver, one load-time parameter flipped — different behaviour.
/// assert_ne!(
///     lro.handler(fmeter_kernel_sim::ModuleOp::NicReceive),
///     nolro.handler(fmeter_kernel_sim::ModuleOp::NicReceive),
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelModule {
    name: String,
    version: String,
    params: Vec<(String, String)>,
    receive: ModuleHandler,
    transmit: ModuleHandler,
    interrupt: ModuleHandler,
}

impl KernelModule {
    /// Creates a module with empty handlers.
    pub fn new(name: impl Into<String>, version: impl Into<String>) -> Self {
        KernelModule {
            name: name.into(),
            version: version.into(),
            params: Vec::new(),
            receive: ModuleHandler::default(),
            transmit: ModuleHandler::default(),
            interrupt: ModuleHandler::default(),
        }
    }

    /// Module name (e.g. `myri10ge`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Module version string.
    pub fn version(&self) -> &str {
        &self.version
    }

    /// Load-time parameters (e.g. `lro=0`).
    pub fn params(&self) -> &[(String, String)] {
        &self.params
    }

    /// Sets a load-time parameter.
    pub fn param(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.params.push((key.into(), value.into()));
        self
    }

    /// Installs the handler for `op`.
    pub fn with_handler(mut self, op: ModuleOp, handler: ModuleHandler) -> Self {
        match op {
            ModuleOp::NicReceive => self.receive = handler,
            ModuleOp::NicTransmit => self.transmit = handler,
            ModuleOp::NicInterrupt => self.interrupt = handler,
        }
        self
    }

    /// The handler for `op`.
    pub fn handler(&self, op: ModuleOp) -> &ModuleHandler {
        match op {
            ModuleOp::NicReceive => &self.receive,
            ModuleOp::NicTransmit => &self.transmit,
            ModuleOp::NicInterrupt => &self.interrupt,
        }
    }
}

/// Constructors for the three myri10ge driver variants of the paper's
/// Table 5 experiment.
pub mod modules {
    use super::*;

    /// myri10ge v1.5.1, default parameters (LRO enabled) — the paper's
    /// "normal mode of operation" baseline.
    ///
    /// With large receive offload, the driver aggregates ~8 segments into
    /// one super-packet before handing it to the stack: many
    /// `inet_lro_receive_skb` calls, comparatively few full stack
    /// traversals.
    pub fn myri10ge_v151() -> KernelModule {
        KernelModule::new("myri10ge", "1.5.1")
            .param("lro", "1")
            .with_handler(
                ModuleOp::NicReceive,
                ModuleHandler {
                    calls: vec![
                        ModuleCall::new("inet_lro_receive_skb", 1.0),
                        ModuleCall::new("lro_flush_all", 0.125),
                        ModuleCall::new("netdev_alloc_skb", 1.0),
                        ModuleCall::new("eth_type_trans", 0.125),
                        ModuleCall::new("__napi_complete", 0.06),
                    ],
                    internal_cost_per_unit: Nanos(90),
                },
            )
            .with_handler(
                ModuleOp::NicTransmit,
                ModuleHandler {
                    calls: vec![
                        // Multi-queue tx: the stack consulted the driver's
                        // (un-instrumented) select_queue; the driver frees
                        // skbs and occasionally kicks the queue.
                        ModuleCall::new("kfree_skb", 1.0),
                        ModuleCall::new("netif_schedule_queue", 0.12),
                    ],
                    internal_cost_per_unit: Nanos(120),
                },
            )
            .with_handler(
                ModuleOp::NicInterrupt,
                ModuleHandler {
                    calls: vec![
                        ModuleCall::new("do_IRQ", 1.0),
                        ModuleCall::new("napi_schedule_fn", 0.9),
                    ],
                    internal_cost_per_unit: Nanos(300),
                },
            )
    }

    /// myri10ge v1.5.1 with `myri10ge_lro=0` — the paper's "compromised
    /// system" scenario: one load-time flag flipped, LRO disabled.
    ///
    /// Every segment now traverses the full stack individually: per-packet
    /// `netif_receive_skb` and `eth_type_trans`, no LRO calls at all.
    pub fn myri10ge_v151_no_lro() -> KernelModule {
        KernelModule::new("myri10ge", "1.5.1")
            .param("lro", "0")
            .with_handler(
                ModuleOp::NicReceive,
                ModuleHandler {
                    calls: vec![
                        ModuleCall::new("netif_receive_skb", 1.0),
                        ModuleCall::new("eth_type_trans", 1.0),
                        ModuleCall::new("netdev_alloc_skb", 1.0),
                        ModuleCall::new("__napi_complete", 0.06),
                    ],
                    internal_cost_per_unit: Nanos(110),
                },
            )
            .with_handler(
                ModuleOp::NicTransmit,
                ModuleHandler {
                    calls: vec![
                        ModuleCall::new("kfree_skb", 1.0),
                        ModuleCall::new("netif_schedule_queue", 0.12),
                    ],
                    internal_cost_per_unit: Nanos(120),
                },
            )
            .with_handler(
                ModuleOp::NicInterrupt,
                ModuleHandler {
                    calls: vec![
                        ModuleCall::new("do_IRQ", 1.0),
                        ModuleCall::new("napi_schedule_fn", 0.9),
                    ],
                    internal_cost_per_unit: Nanos(300),
                },
            )
    }

    /// myri10ge v1.4.3, default parameters — the paper's "older, possibly
    /// buggy driver" scenario.
    ///
    /// The paper disassembled both versions: 24 functions differ, one was
    /// removed, 11 added (only `myri10ge_select_queue` ever called). None
    /// of that is visible directly — but the older receive path uses a
    /// slightly different helper mix (`alloc_skb` instead of
    /// `netdev_alloc_skb`, per-2-packet flushes, occasional
    /// `skb_linearize`), which is what the classifier keys on.
    pub fn myri10ge_v143() -> KernelModule {
        KernelModule::new("myri10ge", "1.4.3")
            .param("lro", "1")
            .with_handler(
                ModuleOp::NicReceive,
                ModuleHandler {
                    calls: vec![
                        ModuleCall::new("inet_lro_receive_skb", 1.0),
                        ModuleCall::new("lro_flush_all", 0.25),
                        ModuleCall::new("alloc_skb", 1.0),
                        ModuleCall::new("eth_type_trans", 0.25),
                        ModuleCall::new("skb_linearize", 0.05),
                        ModuleCall::new("__napi_complete", 0.06),
                    ],
                    internal_cost_per_unit: Nanos(100),
                },
            )
            .with_handler(
                ModuleOp::NicTransmit,
                ModuleHandler {
                    // Single-queue tx path: no select_queue, no queue kicks.
                    calls: vec![ModuleCall::new("kfree_skb", 1.0)],
                    internal_cost_per_unit: Nanos(130),
                },
            )
            .with_handler(
                ModuleOp::NicInterrupt,
                ModuleHandler {
                    calls: vec![
                        ModuleCall::new("do_IRQ", 1.0),
                        ModuleCall::new("netif_rx", 0.2),
                        ModuleCall::new("napi_schedule_fn", 0.7),
                    ],
                    internal_cost_per_unit: Nanos(340),
                },
            )
    }
}

#[cfg(test)]
mod tests {
    use super::modules::*;
    use super::*;

    #[test]
    fn variants_have_distinct_receive_profiles() {
        let a = myri10ge_v151();
        let b = myri10ge_v151_no_lro();
        let c = myri10ge_v143();
        assert_ne!(
            a.handler(ModuleOp::NicReceive),
            b.handler(ModuleOp::NicReceive)
        );
        assert_ne!(
            a.handler(ModuleOp::NicReceive),
            c.handler(ModuleOp::NicReceive)
        );
        assert_ne!(
            b.handler(ModuleOp::NicReceive),
            c.handler(ModuleOp::NicReceive)
        );
    }

    #[test]
    fn lro_off_goes_per_packet() {
        let no_lro = myri10ge_v151_no_lro();
        let rx = no_lro.handler(ModuleOp::NicReceive);
        let netif = rx
            .calls
            .iter()
            .find(|c| c.entry == "netif_receive_skb")
            .unwrap();
        assert_eq!(netif.calls_per_unit, 1.0);
        assert!(!rx.calls.iter().any(|c| c.entry == "inet_lro_receive_skb"));

        let lro = myri10ge_v151();
        let rx = lro.handler(ModuleOp::NicReceive);
        assert!(rx.calls.iter().any(|c| c.entry == "inet_lro_receive_skb"));
        assert!(!rx.calls.iter().any(|c| c.entry == "netif_receive_skb"));
    }

    #[test]
    fn params_recorded() {
        let m = myri10ge_v151_no_lro();
        assert_eq!(m.params(), &[("lro".to_string(), "0".to_string())]);
        assert_eq!(m.name(), "myri10ge");
    }

    #[test]
    fn builder_installs_handlers() {
        let m = KernelModule::new("dummy", "0.1").with_handler(
            ModuleOp::NicTransmit,
            ModuleHandler {
                calls: vec![ModuleCall::new("kfree_skb", 2.0)],
                internal_cost_per_unit: Nanos(10),
            },
        );
        assert_eq!(m.handler(ModuleOp::NicTransmit).calls.len(), 1);
        assert!(m.handler(ModuleOp::NicReceive).calls.is_empty());
    }
}
