use serde::{Deserialize, Serialize};

/// A kernel-visible operation a workload can issue: a system call, a fault,
/// or an interrupt-context activity.
///
/// Each operation expands into a [plan](KernelOp::stages) of core-kernel
/// *entry* functions with repeat counts; executing the plan walks each
/// entry's call subtree, which is where the signature counts come from.
/// Parameters (byte counts, fd counts, page counts) scale the repeats the
/// way loop bounds scale call counts in a real kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum KernelOp {
    /// The cheapest round trip: `getppid()`.
    SyscallNull,
    /// `read()` of `bytes` from a page-cached file.
    Read {
        /// Bytes transferred.
        bytes: u32,
    },
    /// `write()` of `bytes` to a page-cached (journalled) file.
    Write {
        /// Bytes transferred.
        bytes: u32,
    },
    /// `read()` from `/dev/zero`: VFS only, no page cache or filesystem
    /// (lmbench's "Simple read").
    ReadZero,
    /// `write()` to `/dev/null`: VFS only (lmbench's "Simple write").
    WriteNull,
    /// `open()`+path walk of a `components`-deep path.
    Open {
        /// Path components to walk.
        components: u32,
    },
    /// `close()`.
    Close,
    /// `stat()` (path walk + attribute copy).
    Stat {
        /// Path components to walk.
        components: u32,
    },
    /// `fstat()` on an open fd.
    Fstat,
    /// `lseek()`.
    Lseek,
    /// `select()` on `nfds` descriptors (`tcp` picks the socket poll path,
    /// otherwise pipes are polled).
    Select {
        /// Number of descriptors scanned.
        nfds: u32,
        /// Whether the descriptors are TCP sockets.
        tcp: bool,
    },
    /// `fcntl(F_SETLK)` POSIX lock acquire+release.
    FcntlLock,
    /// `mmap()` of `pages` pages of a file (no faulting).
    Mmap {
        /// Pages mapped.
        pages: u32,
    },
    /// `munmap()` of `pages` pages.
    Munmap {
        /// Pages unmapped.
        pages: u32,
    },
    /// `brk()` heap extension.
    Brk,
    /// A page fault; `major` faults read from the filesystem.
    PageFault {
        /// Whether the fault misses the page cache.
        major: bool,
    },
    /// A write to a read-only page: SIGSEGV delivery path.
    ProtectionFault,
    /// `fork()` copying `pages` worth of page tables.
    Fork {
        /// Page-table pages copied.
        pages: u32,
    },
    /// `execve()` loading a binary with `pages` mapped in.
    Execve {
        /// Pages mapped + faulted during load.
        pages: u32,
    },
    /// `exit()` tearing down `pages` worth of mappings.
    Exit {
        /// Page-table pages torn down.
        pages: u32,
    },
    /// `wait4()` reaping a zombie child.
    Wait,
    /// A full context switch through `schedule()`.
    ContextSwitch,
    /// `sched_yield()`.
    SchedYield,
    /// Blocking read of `bytes` from a pipe.
    PipeRead {
        /// Bytes transferred.
        bytes: u32,
    },
    /// Write of `bytes` into a pipe (waking the reader).
    PipeWrite {
        /// Bytes transferred.
        bytes: u32,
    },
    /// `pipe()` creation.
    PipeCreate,
    /// AF_UNIX stream send of `bytes`.
    UnixSend {
        /// Bytes transferred.
        bytes: u32,
    },
    /// AF_UNIX stream receive of `bytes`.
    UnixRecv {
        /// Bytes transferred.
        bytes: u32,
    },
    /// AF_UNIX `connect()` + server `accept()` handshake.
    UnixConnect,
    /// TCP send of `bytes` (segmentation at ~1448 bytes MSS).
    TcpSend {
        /// Bytes transferred.
        bytes: u32,
    },
    /// TCP receive of `bytes` by the application (`recvmsg` side).
    TcpRecv {
        /// Bytes transferred.
        bytes: u32,
    },
    /// Active TCP `connect()`.
    TcpConnect,
    /// `accept()` of an established connection.
    Accept,
    /// `sendfile()` of `bytes` from page cache to a socket.
    Sendfile {
        /// Bytes transferred.
        bytes: u32,
    },
    /// NET_RX softirq processing `packets` already-queued packets
    /// (the core-kernel half of the receive path; the driver half is a
    /// module op).
    SoftirqNetRx {
        /// Packets delivered up the stack.
        packets: u32,
    },
    /// System-V semaphore operation (semop).
    SemOp,
    /// `sigaction()` handler installation.
    SignalInstall,
    /// Full signal delivery: kill + frame setup + handler + sigreturn.
    SignalDeliver,
    /// `open(O_CREAT)` creating a new file (journalled).
    FileCreate,
    /// `unlink()` of a file (journalled).
    Unlink,
    /// `mkdir()`.
    Mkdir,
    /// `rename()`.
    Rename,
    /// `fsync()` forcing a journal commit.
    Fsync,
    /// `getdents()` over a directory of `entries` entries.
    ReadDir {
        /// Directory entries returned.
        entries: u32,
    },
    /// `gettimeofday()`.
    Gettimeofday,
    /// `ioctl()` (multiplexed misc path).
    Ioctl,
    /// The periodic timer interrupt (fires from the engine, not from
    /// workloads).
    TimerTick,
    /// Block I/O completion interrupt path.
    BlockIrq,
}

/// One step of an operation plan: execute the call subtree rooted at the
/// named entry `repeats` times, each time with probability `probability`.
///
/// Serializes (for plan dumps) but does not deserialize: the entry is a
/// `&'static str` anchor into the compiled-in plan tables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Stage {
    /// Anchor symbol name of the entry function.
    pub entry: &'static str,
    /// Number of independent executions of the subtree.
    pub repeats: u32,
    /// Probability that each execution actually happens.
    pub probability: f32,
}

impl Stage {
    const fn new(entry: &'static str, repeats: u32) -> Self {
        Stage {
            entry,
            repeats,
            probability: 1.0,
        }
    }

    const fn maybe(entry: &'static str, repeats: u32, probability: f32) -> Self {
        Stage {
            entry,
            repeats,
            probability,
        }
    }
}

/// Pages covered by `bytes`, at least one.
fn pages(bytes: u32) -> u32 {
    bytes.div_ceil(4096).max(1)
}

/// TCP segments covered by `bytes` at an MSS of 1448.
fn segments(bytes: u32) -> u32 {
    bytes.div_ceil(1448).max(1)
}

impl KernelOp {
    /// The operation's execution plan, as stages over anchor entry points.
    ///
    /// Plans encode the *vertical* composition of the kernel (syscall →
    /// VFS → filesystem → block, socket → TCP → IP → device): each stage
    /// names the layer's entry anchor, and the call graph supplies the
    /// intra-subsystem fan-out below it.
    pub fn stages(&self) -> Vec<Stage> {
        use KernelOp::*;
        match *self {
            SyscallNull => vec![Stage::new("system_call", 1), Stage::new("sys_getpid", 1)],
            Gettimeofday => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_gettimeofday", 1),
                Stage::new("do_gettimeofday", 1),
            ],
            Ioctl => vec![Stage::new("system_call", 1), Stage::new("sys_ioctl", 1)],
            Read { bytes } => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_read", 1),
                Stage::new("vfs_read", 1),
                Stage::new("generic_file_aio_read", pages(bytes)),
            ],
            ReadZero => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_read", 1),
                Stage::new("vfs_read", 1),
            ],
            WriteNull => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_write", 1),
                Stage::new("vfs_write", 1),
            ],
            Write { bytes } => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_write", 1),
                Stage::new("vfs_write", 1),
                Stage::new("generic_file_buffered_write", pages(bytes)),
                Stage::new("ext3_write_begin", pages(bytes)),
                Stage::new("ext3_ordered_write_end", pages(bytes)),
            ],
            Open { components } => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_open", 1),
                Stage::new("do_sys_open", 1),
                Stage::new("do_filp_open", 1),
                Stage::new("path_lookup", 1),
                Stage::new("link_path_walk", 1),
                Stage::new("do_lookup", components.max(1)),
                Stage::new("may_open", 1),
                Stage::new("get_empty_filp", 1),
                Stage::new("fd_install", 1),
            ],
            Close => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_close", 1),
                Stage::new("filp_close", 1),
                Stage::new("fput", 1),
            ],
            Stat { components } => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_stat", 1),
                Stage::new("vfs_stat", 1),
                Stage::new("path_lookup", 1),
                Stage::new("do_lookup", components.max(1)),
                Stage::new("vfs_getattr", 1),
                Stage::new("cp_new_stat", 1),
            ],
            Fstat => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_fstat", 1),
                Stage::new("vfs_fstat", 1),
                Stage::new("fget_light", 1),
                Stage::new("vfs_getattr", 1),
                Stage::new("cp_new_stat", 1),
            ],
            Lseek => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_lseek", 1),
                Stage::new("vfs_llseek", 1),
                Stage::new("generic_file_llseek", 1),
            ],
            Select { nfds, tcp } => {
                let mut stages = vec![
                    Stage::new("system_call", 1),
                    Stage::new("sys_select", 1),
                    Stage::new("core_sys_select", 1),
                    Stage::new("do_select", 1),
                    Stage::new("poll_initwait", 1),
                    Stage::new("fget_light", nfds),
                    Stage::new("__pollwait", nfds),
                ];
                if tcp {
                    stages.push(Stage::new("sock_poll", nfds));
                    stages.push(Stage::new("tcp_poll", nfds));
                } else {
                    stages.push(Stage::new("pipe_poll", nfds));
                }
                stages.push(Stage::new("poll_freewait", 1));
                stages
            }
            FcntlLock => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_fcntl", 1),
                Stage::new("do_fcntl", 1),
                Stage::new("fcntl_setlk", 1),
                Stage::new("posix_lock_file", 1),
                Stage::new("locks_remove_posix", 1),
            ],
            Mmap { pages } => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_mmap", 1),
                Stage::new("do_mmap_pgoff", 1),
                Stage::new("mmap_region", 1),
                Stage::maybe("vma_merge", 1, 0.6),
                Stage::new("find_vma_prepare", 1),
                // Touching the mapping faults pages in.
                Stage::new("do_page_fault", pages),
            ],
            Munmap { pages } => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_munmap", 1),
                Stage::new("do_munmap", 1),
                Stage::new("unmap_region", 1),
                Stage::new("zap_pte_range", pages.div_ceil(8).max(1)),
                Stage::new("free_hot_cold_page", pages),
            ],
            Brk => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_brk", 1),
                Stage::new("do_brk", 1),
                Stage::maybe("vma_merge", 1, 0.7),
            ],
            PageFault { major } => {
                let mut stages = vec![
                    Stage::new("do_page_fault", 1),
                    Stage::new("handle_mm_fault", 1),
                    Stage::new("find_vma", 1),
                ];
                if major {
                    stages.push(Stage::new("filemap_fault", 1));
                    stages.push(Stage::new("page_cache_sync_readahead", 1));
                    stages.push(Stage::new("ext3_readpage", 1));
                    stages.push(Stage::new("submit_bio", 1));
                    stages.push(Stage::new("io_schedule", 1));
                } else {
                    stages.push(Stage::new("do_anonymous_page", 1));
                    stages.push(Stage::new("__alloc_pages_internal", 1));
                }
                stages
            }
            ProtectionFault => vec![
                Stage::new("do_page_fault", 1),
                Stage::new("find_vma", 1),
                Stage::new("force_sig_info", 1),
                Stage::new("signal_wake_up", 1),
            ],
            Fork { pages } => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_fork", 1),
                Stage::new("do_fork", 1),
                Stage::new("copy_process", 1),
                Stage::new("dup_task_struct", 1),
                Stage::new("copy_files", 1),
                Stage::new("copy_mm", 1),
                Stage::new("dup_mm", 1),
                Stage::new("copy_page_range", pages.max(1)),
                Stage::new("alloc_pid", 1),
                Stage::new("sched_fork", 1),
                Stage::new("wake_up_new_task", 1),
            ],
            Execve { pages } => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_execve", 1),
                Stage::new("do_execve", 1),
                Stage::new("search_binary_handler", 1),
                Stage::new("load_elf_binary", 1),
                Stage::new("flush_old_exec", 1),
                Stage::new("exit_mmap", 1),
                Stage::new("setup_arg_pages", 1),
                Stage::new("do_mmap_pgoff", pages.div_ceil(16).max(1)),
                Stage::new("do_page_fault", pages.max(1)),
            ],
            Exit { pages } => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_exit_group", 1),
                Stage::new("do_exit", 1),
                Stage::new("exit_mmap", 1),
                Stage::new("unmap_vmas", 1),
                Stage::new("zap_pte_range", pages.div_ceil(8).max(1)),
                Stage::new("exit_files", 1),
                Stage::new("exit_notify", 1),
                Stage::new("__exit_signal", 1),
            ],
            Wait => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_wait4", 1),
                Stage::new("do_wait", 1),
                Stage::new("wait_task_zombie", 1),
                Stage::new("release_task", 1),
            ],
            ContextSwitch => vec![
                Stage::new("schedule", 1),
                Stage::new("context_switch", 1),
                Stage::new("__switch_to", 1),
            ],
            SchedYield => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_sched_yield", 1),
                Stage::new("schedule", 1),
            ],
            PipeRead { bytes } => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_read", 1),
                Stage::new("vfs_read", 1),
                Stage::new("pipe_read", pages(bytes)),
                Stage::maybe("pipe_wait", 1, 0.5),
                Stage::new("__wake_up", 1),
            ],
            PipeWrite { bytes } => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_write", 1),
                Stage::new("vfs_write", 1),
                Stage::new("pipe_write", pages(bytes)),
                Stage::new("__wake_up", 1),
            ],
            PipeCreate => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_pipe", 1),
                Stage::new("do_pipe_flags", 1),
                Stage::new("get_empty_filp", 2),
                Stage::new("fd_install", 2),
            ],
            UnixSend { bytes } => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_sendmsg", 1),
                Stage::new("sock_sendmsg", 1),
                Stage::new("unix_stream_sendmsg", 1),
                Stage::new("alloc_skb", pages(bytes)),
                Stage::new("skb_copy_datagram_iovec", pages(bytes)),
                Stage::new("sock_def_readable", 1),
            ],
            UnixRecv { bytes } => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_recvmsg", 1),
                Stage::new("sock_recvmsg", 1),
                Stage::new("unix_stream_recvmsg", 1),
                Stage::new("skb_recv_datagram", pages(bytes)),
                Stage::new("skb_copy_datagram_iovec", pages(bytes)),
                Stage::new("kfree_skb", pages(bytes)),
            ],
            UnixConnect => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_connect", 1),
                Stage::new("unix_stream_connect", 1),
                Stage::new("unix_create1", 1),
                Stage::new("unix_accept", 1),
                Stage::new("sock_def_readable", 1),
            ],
            TcpSend { bytes } => {
                let segs = segments(bytes);
                vec![
                    Stage::new("system_call", 1),
                    Stage::new("sys_sendto", 1),
                    Stage::new("sock_sendmsg", 1),
                    Stage::new("tcp_sendmsg", 1),
                    Stage::new("sk_stream_alloc_skb", segs),
                    Stage::new("tcp_push", 1),
                    Stage::new("tcp_write_xmit", segs),
                ]
            }
            TcpRecv { bytes } => {
                let segs = segments(bytes);
                vec![
                    Stage::new("system_call", 1),
                    Stage::new("sys_recvfrom", 1),
                    Stage::new("sock_recvmsg", 1),
                    Stage::new("tcp_recvmsg", 1),
                    Stage::new("skb_copy_datagram_iovec", segs),
                    Stage::new("tcp_send_ack", segs.div_ceil(2).max(1)),
                    Stage::new("__kfree_skb", segs),
                ]
            }
            TcpConnect => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_connect", 1),
                Stage::new("inet_stream_connect", 1),
                Stage::new("tcp_v4_connect", 1),
                Stage::new("ip_route_output_flow", 1),
                Stage::new("tcp_transmit_skb", 1),
            ],
            Accept => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_accept_impl", 1),
                Stage::new("inet_accept", 1),
                Stage::new("inet_csk_accept", 1),
                Stage::new("get_empty_filp", 1),
                Stage::new("fd_install", 1),
            ],
            Sendfile { bytes } => {
                let p = pages(bytes);
                let segs = segments(bytes);
                vec![
                    Stage::new("system_call", 1),
                    Stage::new("sys_sendfile64", 1),
                    Stage::new("do_sendfile", 1),
                    Stage::new("find_get_page", p),
                    Stage::new("tcp_sendmsg", 1),
                    Stage::new("tcp_write_xmit", segs),
                ]
            }
            SoftirqNetRx { packets } => vec![
                Stage::new("do_softirq", 1),
                Stage::new("net_rx_action", 1),
                Stage::new("netif_receive_skb", packets.max(1)),
            ],
            SemOp => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_semop", 1),
                Stage::new("do_semtimedop", 1),
                Stage::new("sem_lock", 1),
                Stage::new("try_atomic_semop", 1),
                Stage::maybe("update_queue", 1, 0.7),
                Stage::new("sem_unlock", 1),
            ],
            SignalInstall => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_rt_sigaction", 1),
                Stage::new("do_sigaction", 1),
                Stage::new("recalc_sigpending", 1),
            ],
            SignalDeliver => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_kill", 1),
                Stage::new("__send_signal", 1),
                Stage::new("signal_wake_up", 1),
                Stage::new("get_signal_to_deliver", 1),
                Stage::new("dequeue_signal", 1),
                Stage::new("handle_signal", 1),
                Stage::new("setup_rt_frame", 1),
                Stage::new("sys_rt_sigreturn", 1),
            ],
            FileCreate => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_open", 1),
                Stage::new("do_sys_open", 1),
                Stage::new("do_filp_open", 1),
                Stage::new("path_lookup", 1),
                Stage::new("vfs_create", 1),
                Stage::new("ext3_create", 1),
                Stage::new("journal_start", 1),
                Stage::new("ext3_add_entry", 1),
                Stage::new("ext3_mark_inode_dirty", 1),
                Stage::new("journal_stop", 1),
            ],
            Unlink => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_unlink", 1),
                Stage::new("vfs_unlink", 1),
                Stage::new("ext3_unlink", 1),
                Stage::new("journal_start", 1),
                Stage::new("ext3_find_entry", 1),
                Stage::new("ext3_delete_entry", 1),
                Stage::new("ext3_orphan_add", 1),
                Stage::new("journal_stop", 1),
            ],
            Mkdir => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_mkdir", 1),
                Stage::new("vfs_mkdir", 1),
                Stage::new("ext3_mkdir", 1),
                Stage::new("journal_start", 1),
                Stage::new("ext3_new_block", 1),
                Stage::new("ext3_add_entry", 1),
                Stage::new("journal_stop", 1),
            ],
            Rename => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_rename", 1),
                Stage::new("vfs_rename", 1),
                Stage::new("ext3_rename", 1),
                Stage::new("journal_start", 1),
                Stage::new("ext3_find_entry", 2),
                Stage::new("ext3_add_entry", 1),
                Stage::new("ext3_delete_entry", 1),
                Stage::new("journal_stop", 1),
            ],
            Fsync => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_fsync", 1),
                Stage::new("vfs_fsync", 1),
                Stage::new("ext3_sync_file", 1),
                Stage::new("journal_commit_transaction_step", 1),
                Stage::new("journal_write_metadata_buffer", 2),
                Stage::new("sync_dirty_buffer", 2),
                Stage::new("submit_bh", 2),
                Stage::new("io_schedule", 1),
            ],
            ReadDir { entries } => vec![
                Stage::new("system_call", 1),
                Stage::new("sys_getdents", 1),
                Stage::new("vfs_readdir", 1),
                Stage::new("ext3_readdir", 1),
                Stage::new("ext3_find_entry", entries.div_ceil(16).max(1)),
            ],
            TimerTick => vec![
                Stage::new("smp_apic_timer_interrupt", 1),
                Stage::new("irq_enter", 1),
                Stage::new("local_apic_timer_interrupt", 1),
                Stage::new("hrtimer_interrupt", 1),
                Stage::new("tick_sched_timer", 1),
                Stage::new("update_process_times", 1),
                Stage::new("scheduler_tick", 1),
                Stage::maybe("run_timer_softirq", 1, 0.4),
                Stage::new("irq_exit", 1),
            ],
            BlockIrq => vec![
                Stage::new("do_IRQ", 1),
                Stage::new("irq_enter", 1),
                Stage::new("ahci_interrupt_stub", 1),
                Stage::new("blk_done_softirq", 1),
                Stage::new("scsi_softirq_done", 1),
                Stage::new("scsi_io_completion", 1),
                Stage::new("bio_endio", 1),
                Stage::new("__wake_up", 1),
                Stage::new("irq_exit", 1),
            ],
        }
    }

    /// A short stable name for reports and logs.
    pub fn name(&self) -> &'static str {
        use KernelOp::*;
        match self {
            SyscallNull => "syscall_null",
            Read { .. } => "read",
            Write { .. } => "write",
            ReadZero => "read_zero",
            WriteNull => "write_null",
            Open { .. } => "open",
            Close => "close",
            Stat { .. } => "stat",
            Fstat => "fstat",
            Lseek => "lseek",
            Select { .. } => "select",
            FcntlLock => "fcntl_lock",
            Mmap { .. } => "mmap",
            Munmap { .. } => "munmap",
            Brk => "brk",
            PageFault { .. } => "page_fault",
            ProtectionFault => "protection_fault",
            Fork { .. } => "fork",
            Execve { .. } => "execve",
            Exit { .. } => "exit",
            Wait => "wait",
            ContextSwitch => "context_switch",
            SchedYield => "sched_yield",
            PipeRead { .. } => "pipe_read",
            PipeWrite { .. } => "pipe_write",
            PipeCreate => "pipe_create",
            UnixSend { .. } => "unix_send",
            UnixRecv { .. } => "unix_recv",
            UnixConnect => "unix_connect",
            TcpSend { .. } => "tcp_send",
            TcpRecv { .. } => "tcp_recv",
            TcpConnect => "tcp_connect",
            Accept => "accept",
            Sendfile { .. } => "sendfile",
            SoftirqNetRx { .. } => "softirq_net_rx",
            SemOp => "sem_op",
            SignalInstall => "signal_install",
            SignalDeliver => "signal_deliver",
            FileCreate => "file_create",
            Unlink => "unlink",
            Mkdir => "mkdir",
            Rename => "rename",
            Fsync => "fsync",
            ReadDir { .. } => "readdir",
            Gettimeofday => "gettimeofday",
            Ioctl => "ioctl",
            TimerTick => "timer_tick",
            BlockIrq => "block_irq",
        }
    }

    /// Every operation variant with representative parameters — used by
    /// tests to verify all plans resolve against the symbol table.
    pub fn examples() -> Vec<KernelOp> {
        use KernelOp::*;
        vec![
            SyscallNull,
            Read { bytes: 4096 },
            Write { bytes: 4096 },
            ReadZero,
            WriteNull,
            Open { components: 3 },
            Close,
            Stat { components: 3 },
            Fstat,
            Lseek,
            Select {
                nfds: 10,
                tcp: false,
            },
            Select {
                nfds: 100,
                tcp: true,
            },
            FcntlLock,
            Mmap { pages: 16 },
            Munmap { pages: 16 },
            Brk,
            PageFault { major: false },
            PageFault { major: true },
            ProtectionFault,
            Fork { pages: 32 },
            Execve { pages: 32 },
            Exit { pages: 32 },
            Wait,
            ContextSwitch,
            SchedYield,
            PipeRead { bytes: 512 },
            PipeWrite { bytes: 512 },
            PipeCreate,
            UnixSend { bytes: 1024 },
            UnixRecv { bytes: 1024 },
            UnixConnect,
            TcpSend { bytes: 16384 },
            TcpRecv { bytes: 16384 },
            TcpConnect,
            Accept,
            Sendfile { bytes: 16384 },
            SoftirqNetRx { packets: 8 },
            SemOp,
            SignalInstall,
            SignalDeliver,
            FileCreate,
            Unlink,
            Mkdir,
            Rename,
            Fsync,
            ReadDir { entries: 64 },
            Gettimeofday,
            Ioctl,
            TimerTick,
            BlockIrq,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_op_has_a_nonempty_plan() {
        for op in KernelOp::examples() {
            let stages = op.stages();
            assert!(!stages.is_empty(), "{} has an empty plan", op.name());
            for s in &stages {
                assert!(
                    s.repeats >= 1,
                    "{}: zero-repeat stage {}",
                    op.name(),
                    s.entry
                );
                assert!(s.probability > 0.0 && s.probability <= 1.0);
            }
        }
    }

    #[test]
    fn byte_parameters_scale_repeats() {
        let small = KernelOp::Read { bytes: 1 }.stages();
        let large = KernelOp::Read { bytes: 64 * 1024 }.stages();
        let total = |ss: &[Stage]| ss.iter().map(|s| s.repeats).sum::<u32>();
        assert!(total(&large) > total(&small));
        // TCP segmentation at MSS granularity.
        let one_seg = KernelOp::TcpSend { bytes: 100 }.stages();
        let many_seg = KernelOp::TcpSend { bytes: 1448 * 10 }.stages();
        assert!(total(&many_seg) >= total(&one_seg) + 9);
    }

    #[test]
    fn select_switches_poll_path() {
        let tcp = KernelOp::Select {
            nfds: 10,
            tcp: true,
        }
        .stages();
        let pipe = KernelOp::Select {
            nfds: 10,
            tcp: false,
        }
        .stages();
        assert!(tcp.iter().any(|s| s.entry == "tcp_poll"));
        assert!(!tcp.iter().any(|s| s.entry == "pipe_poll"));
        assert!(pipe.iter().any(|s| s.entry == "pipe_poll"));
    }

    #[test]
    fn major_fault_reaches_block_layer() {
        let major = KernelOp::PageFault { major: true }.stages();
        let minor = KernelOp::PageFault { major: false }.stages();
        assert!(major.iter().any(|s| s.entry == "submit_bio"));
        assert!(!minor.iter().any(|s| s.entry == "submit_bio"));
    }

    #[test]
    fn names_are_unique_per_kind() {
        let mut names: Vec<&str> = KernelOp::examples().iter().map(|o| o.name()).collect();
        names.dedup(); // adjacent duplicates only exist for same-kind ops
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert!(set.len() >= 45);
    }
}
