use std::error::Error;
use std::fmt;

/// Errors produced while building or driving the simulated kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KernelError {
    /// A named function was referenced but does not exist in the symbol
    /// table.
    UnknownFunction(String),
    /// A function id is out of range for the symbol table.
    FunctionOutOfRange {
        /// The offending id.
        id: u32,
        /// Number of functions in the table.
        len: usize,
    },
    /// A CPU id is out of range for the machine.
    CpuOutOfRange {
        /// The offending CPU id.
        cpu: usize,
        /// Number of simulated CPUs.
        num_cpus: usize,
    },
    /// The generated call graph contains a cycle (builder bug or bad
    /// hand-wired edge).
    CyclicCallGraph {
        /// Name of a function on the cycle.
        function: String,
    },
    /// A module with this name is already loaded / was not found.
    ModuleNotLoaded(String),
    /// A module with this name is already loaded.
    ModuleAlreadyLoaded(String),
    /// A debugfs path was not found.
    NoSuchDebugfsFile(String),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::UnknownFunction(name) => {
                write!(f, "unknown kernel function `{name}`")
            }
            KernelError::FunctionOutOfRange { id, len } => {
                write!(f, "function id {id} out of range for symbol table of {len}")
            }
            KernelError::CpuOutOfRange { cpu, num_cpus } => {
                write!(f, "cpu {cpu} out of range for machine with {num_cpus} cpus")
            }
            KernelError::CyclicCallGraph { function } => {
                write!(f, "call graph contains a cycle through `{function}`")
            }
            KernelError::ModuleNotLoaded(name) => {
                write!(f, "module `{name}` is not loaded")
            }
            KernelError::ModuleAlreadyLoaded(name) => {
                write!(f, "module `{name}` is already loaded")
            }
            KernelError::NoSuchDebugfsFile(path) => {
                write!(f, "no such debugfs file `{path}`")
            }
        }
    }
}

impl Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            KernelError::UnknownFunction("foo".into()).to_string(),
            "unknown kernel function `foo`"
        );
        assert_eq!(
            KernelError::CpuOutOfRange {
                cpu: 17,
                num_cpus: 16
            }
            .to_string(),
            "cpu 17 out of range for machine with 16 cpus"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KernelError>();
    }
}
