//! Property-based tests for the kernel simulator.

use std::sync::Arc;

use fmeter_kernel_sim::{
    CountingTracer, CpuId, Kernel, KernelConfig, KernelImageBuilder, KernelOp, Nanos,
};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = KernelOp> {
    prop_oneof![
        Just(KernelOp::SyscallNull),
        (1u32..65536).prop_map(|bytes| KernelOp::Read { bytes }),
        (1u32..65536).prop_map(|bytes| KernelOp::Write { bytes }),
        (1u32..8).prop_map(|components| KernelOp::Open { components }),
        Just(KernelOp::Close),
        (1u32..8).prop_map(|components| KernelOp::Stat { components }),
        Just(KernelOp::Fstat),
        (1u32..128, any::<bool>()).prop_map(|(nfds, tcp)| KernelOp::Select { nfds, tcp }),
        (1u32..256).prop_map(|pages| KernelOp::Mmap { pages }),
        prop_oneof![Just(false), Just(true)].prop_map(|major| KernelOp::PageFault { major }),
        (1u32..256).prop_map(|pages| KernelOp::Fork { pages }),
        (1u32..256).prop_map(|pages| KernelOp::Exit { pages }),
        Just(KernelOp::ContextSwitch),
        (1u32..65536).prop_map(|bytes| KernelOp::TcpSend { bytes }),
        (1u32..65536).prop_map(|bytes| KernelOp::TcpRecv { bytes }),
        (1u32..64).prop_map(|packets| KernelOp::SoftirqNetRx { packets }),
        Just(KernelOp::SemOp),
        Just(KernelOp::SignalDeliver),
        Just(KernelOp::FileCreate),
        Just(KernelOp::Fsync),
        Just(KernelOp::Gettimeofday),
    ]
}

fn kernel(seed: u64) -> Kernel {
    Kernel::new(KernelConfig {
        num_cpus: 2,
        seed,
        timer_hz: 0,
        image_seed: 0x2628,
    })
    .expect("standard image builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_op_terminates_and_advances_time(op in arb_op(), seed in 0u64..32) {
        let mut k = kernel(seed);
        let before = k.now();
        let stats = k.run_op(CpuId(0), op).unwrap();
        prop_assert!(stats.calls >= 1, "{:?} produced no calls", op);
        prop_assert!(stats.calls < 5_000_000, "{:?} exploded: {} calls", op, stats.calls);
        prop_assert!(k.now() > before);
        prop_assert_eq!(Nanos(k.now().0 - before.0), stats.time);
    }

    #[test]
    fn tracer_sees_exactly_the_executed_calls(
        ops in prop::collection::vec(arb_op(), 1..12),
        seed in 0u64..16,
    ) {
        let mut k = kernel(seed);
        let tracer = Arc::new(CountingTracer::new(k.num_functions()));
        k.set_tracer(tracer.clone());
        let mut expected = 0u64;
        for (i, op) in ops.into_iter().enumerate() {
            expected += k.run_op(CpuId(i % 2), op).unwrap().calls;
        }
        prop_assert_eq!(tracer.total(), expected);
    }

    #[test]
    fn identical_seeds_replay_identically(
        ops in prop::collection::vec(arb_op(), 1..10),
        seed in 0u64..16,
    ) {
        let mut a = kernel(seed);
        let mut b = kernel(seed);
        for op in ops {
            let sa = a.run_op(CpuId(0), op).unwrap();
            let sb = b.run_op(CpuId(0), op).unwrap();
            prop_assert_eq!(sa, sb);
        }
        prop_assert_eq!(a.now(), b.now());
    }

    #[test]
    fn per_cpu_accounting_sums_to_totals(
        ops in prop::collection::vec(arb_op(), 1..10),
        seed in 0u64..16,
    ) {
        let mut k = kernel(seed);
        let tracer = Arc::new(CountingTracer::new(k.num_functions()));
        k.set_tracer(tracer.clone());
        for (i, op) in ops.iter().enumerate() {
            k.run_op(CpuId(i % 2), *op).unwrap();
        }
        let per_cpu: u64 = (0..2)
            .map(|c| k.cpu(CpuId(c)).unwrap().calls_executed)
            .sum();
        prop_assert_eq!(per_cpu, tracer.total());
        let ops_count: u64 = (0..2)
            .map(|c| k.cpu(CpuId(c)).unwrap().ops_executed)
            .sum();
        prop_assert_eq!(ops_count, ops.len() as u64);
    }

    #[test]
    fn byte_scaling_is_monotone_in_expectation(seed in 0u64..8) {
        // Bigger reads never *average* fewer calls (stochastic branching
        // allows individual inversions, so compare batch totals).
        let mut small_total = 0u64;
        let mut large_total = 0u64;
        let mut ks = kernel(seed);
        let mut kl = kernel(seed + 1000);
        for _ in 0..30 {
            small_total += ks.run_op(CpuId(0), KernelOp::Read { bytes: 512 }).unwrap().calls;
            large_total += kl.run_op(CpuId(0), KernelOp::Read { bytes: 256 * 1024 }).unwrap().calls;
        }
        prop_assert!(large_total > small_total);
    }

    #[test]
    fn images_with_same_seed_are_bit_identical(seed in 0u64..8) {
        let a = KernelImageBuilder::new().seed(seed).build().unwrap();
        let b = KernelImageBuilder::new().seed(seed).build().unwrap();
        prop_assert_eq!(a.symbols.len(), b.symbols.len());
        for (fa, fb) in a.symbols.iter().zip(b.symbols.iter()) {
            prop_assert_eq!(fa, fb);
        }
        prop_assert_eq!(a.callgraph.num_edges(), b.callgraph.num_edges());
    }

    #[test]
    fn expected_calls_bounds_hold_for_all_entries(seed in 0u64..4) {
        // No op plan entry may have an explosive or empty expected
        // subtree on any image seed.
        let image = KernelImageBuilder::new().seed(seed).build().unwrap();
        for op in KernelOp::examples() {
            for stage in op.stages() {
                let id = image.symbols.lookup(stage.entry).unwrap();
                let expected = image.callgraph.expected_calls(id);
                prop_assert!(expected >= 1.0);
                prop_assert!(
                    expected <= 5_000.0,
                    "{}: {} has expected subtree {}",
                    op.name(),
                    stage.entry,
                    expected
                );
            }
        }
    }
}
